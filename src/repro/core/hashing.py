"""The hierarchical MinHash family (Section 4.2.1).

A family of ``n_h`` universal hash functions maps every *base* ST-cell
``(t, l)`` -- encoded as the integer ``t * |L| + index(l)`` -- to a value in
``[0, |S| - 1]`` where ``|S| = |L| * horizon`` is the size of the ST-cell
universe.  Cells at coarser levels are hashed through the paper's parent
constraint:

    ``h_u(t, l_x) = min over children l_c of l_x of h_u(t, l_c)``

applied recursively, i.e. the hash of a coarse cell is the minimum hash of
all its *base* descendants at the same time.  This guarantees Theorem 1
(signatures at coarser levels are element-wise no larger than at finer
levels) and makes signatures of different levels comparable, which is what
the MinSigTree's pruning relies on.

Hash evaluation is vectorised with numpy across the whole family.  Two
evaluation paths share the exact same modular arithmetic and are therefore
bitwise-identical:

* the **per-cell path** (:meth:`HierarchicalHashFamily.hash_cell`), which
  caches one hash vector per (time, unit) cell -- the right tool for
  incremental updates and single queries, where popular coarse cells are
  shared across calls; and
* the **bulk path** (:meth:`HierarchicalHashFamily.hash_cells_bulk`), which
  lays every cell's base-descendant codes into one flat array, evaluates the
  whole family with a single broadcasted modular-hash kernel, and reduces
  per-cell minima with ``np.minimum.reduceat`` -- the right tool when signing
  a whole dataset at once.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.traces.events import STCell
from repro.traces.spatial import SpatialHierarchy

__all__ = ["HierarchicalHashFamily"]

# A Mersenne prime: universal hashing modulus.  Coefficients and (reduced)
# cell codes are both below 2^31, so products fit comfortably in uint64.
_MERSENNE_PRIME = (1 << 31) - 1

# Soft cap on the number of grid elements materialised per bulk-kernel chunk;
# keeps peak memory of the bulk path around a hundred MB regardless of
# dataset size.
_BULK_CHUNK_ELEMENTS = 1 << 23


class HierarchicalHashFamily:
    """``n_h`` universal hash functions over ST-cells with the parent constraint.

    Parameters
    ----------
    hierarchy:
        The sp-index; needed to enumerate base descendants of coarse units.
    horizon:
        Number of base temporal units; together with the number of base
        spatial units it fixes the hash range ``|S|``.
    num_hashes:
        Family size ``n_h`` (the signature dimensionality).
    seed:
        Seed for the hash coefficients; two families built with the same seed
        and shape are identical, which the incremental-update path relies on.
    """

    def __init__(
        self,
        hierarchy: SpatialHierarchy,
        horizon: int,
        num_hashes: int,
        seed: int = 0,
    ) -> None:
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        hierarchy.validate()
        self.hierarchy = hierarchy
        self.horizon = int(horizon)
        self.num_hashes = int(num_hashes)
        self.seed = int(seed)
        self.num_base_units = hierarchy.num_base_units
        #: Size of the ST-cell universe; hash values live in [0, hash_range).
        self.hash_range = self.num_base_units * self.horizon
        if self.hash_range >= _MERSENNE_PRIME:
            raise ValueError(
                f"ST-cell universe of size {self.hash_range} exceeds the hash modulus; "
                "reduce the horizon or the number of base units"
            )

        rng = np.random.default_rng(seed)
        # Multipliers must be non-zero modulo the prime for universality.
        self._a = rng.integers(1, _MERSENNE_PRIME, size=self.num_hashes, dtype=np.uint64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=self.num_hashes, dtype=np.uint64)
        # Cache of hash vectors per cell; keyed by (time, unit_id).
        self._cell_cache: Dict[Tuple[int, str], np.ndarray] = {}
        # Cache of base descendant index arrays per non-base unit.
        self._descendant_indexes: Dict[str, np.ndarray] = {}
        # Bulk-path caches: level-1 ancestor per unit and subtree layouts.
        self._unit_roots: Dict[str, str] = {}
        self._layouts: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_base_cell(self, time: int, unit_id: str) -> int:
        """Integer code of a base ST-cell (row-major over time then unit)."""
        index = self.hierarchy.base_unit_index(unit_id)
        return int(time) * self.num_base_units + index

    def _codes_for_unit(self, time: int, unit_id: str) -> np.ndarray:
        """Codes of all base descendants of ``unit_id`` at ``time``."""
        indexes = self._descendant_indexes.get(unit_id)
        if indexes is None:
            descendants = self.hierarchy.base_descendants(unit_id)
            indexes = np.array(
                [self.hierarchy.base_unit_index(base) for base in descendants],
                dtype=np.uint64,
            )
            self._descendant_indexes[unit_id] = indexes
        return np.uint64(time) * np.uint64(self.num_base_units) + indexes

    # ------------------------------------------------------------------
    # Hash evaluation
    # ------------------------------------------------------------------
    def _hash_codes(self, codes: np.ndarray) -> np.ndarray:
        """Hash a vector of cell codes with every function: shape (n_h, len(codes))."""
        if codes.size == 0:
            return np.empty((self.num_hashes, 0), dtype=np.int64)
        reduced = codes.astype(np.uint64) % np.uint64(_MERSENNE_PRIME)
        # a, reduced < 2^31, so a * reduced < 2^62 fits in uint64.
        product = (self._a[:, None] * reduced[None, :] + self._b[:, None]) % np.uint64(
            _MERSENNE_PRIME
        )
        return (product % np.uint64(self.hash_range)).astype(np.int64)

    def hash_base_cell(self, time: int, unit_id: str) -> np.ndarray:
        """Hash vector (length ``n_h``) of a base ST-cell."""
        code = np.array([self.encode_base_cell(time, unit_id)], dtype=np.uint64)
        return self._hash_codes(code)[:, 0]

    def hash_cell(self, cell: STCell) -> np.ndarray:
        """Hash vector of an ST-cell at any level (cached).

        For base cells this is the direct universal hash; for coarser cells it
        is the element-wise minimum over all base descendants at the same
        time, which realises the parent constraint exactly.
        """
        key = (cell.time, cell.unit)
        cached = self._cell_cache.get(key)
        if cached is not None:
            return cached
        unit = self.hierarchy.unit(cell.unit)
        if unit.is_base:
            values = self.hash_base_cell(cell.time, cell.unit)
        else:
            codes = self._codes_for_unit(cell.time, cell.unit)
            values = self._hash_codes(codes).min(axis=1)
        self._cell_cache[key] = values
        return values

    def hash_value(self, function_index: int, cell: STCell) -> int:
        """Scalar hash ``h_u(cell)`` for one function of the family."""
        if not 0 <= function_index < self.num_hashes:
            raise IndexError(f"hash function index {function_index} out of range")
        return int(self.hash_cell(cell)[function_index])

    def hash_matrix(self, cells: Iterable[STCell]) -> np.ndarray:
        """Stack hash vectors of many cells into a matrix of shape (n_cells, n_h)."""
        rows = [self.hash_cell(cell) for cell in cells]
        if not rows:
            return np.empty((0, self.num_hashes), dtype=np.int64)
        return np.stack(rows, axis=0)

    # ------------------------------------------------------------------
    # Bulk evaluation (no per-cell cache)
    # ------------------------------------------------------------------
    def hash_cells_bulk(
        self, cells: Sequence[STCell], out_dtype: np.dtype = np.int64
    ) -> np.ndarray:
        """Hash many cells with one broadcasted kernel: shape (n_cells, n_h).

        Bitwise-identical to stacking :meth:`hash_cell` results, but the
        per-cell dict cache is bypassed entirely.  Cells are grouped by their
        level-1 subtree; for each subtree the whole (time x base-descendant)
        hash grid is evaluated with a decomposed modular kernel (the time and
        unit terms of ``a * (t*|L| + i) + b`` are combined with one addition
        modulo the prime instead of one multiplication per grid element), and
        coarse-cell minima are then reduced *hierarchically* -- one grouped
        minimum per sp-index level -- so each base hash value is read once
        per level instead of once per ancestor cell.  Work is chunked over
        times so peak memory stays bounded.

        ``out_dtype`` may be ``np.int32`` (hash values fit: the range is
        below the 2^31 modulus); the bulk signature pipeline uses this to
        halve the memory traffic of its reduction stage.
        """
        out = np.empty((len(cells), self.num_hashes), dtype=out_dtype)
        if len(cells):
            groups: Dict[str, List[int]] = {}
            for position, cell in enumerate(cells):
                groups.setdefault(self._root_of(cell.unit), []).append(position)
            for root, positions in groups.items():
                self._hash_subtree_group(out, cells, positions, root)
        return out

    def _root_of(self, unit_id: str) -> str:
        """Level-1 ancestor of a unit (cached)."""
        root = self._unit_roots.get(unit_id)
        if root is None:
            root = self.hierarchy.path(unit_id)[0]
            self._unit_roots[unit_id] = root
        return root

    def _subtree_layout(self, root: str) -> Dict[str, object]:
        """Pre-order layout of one level-1 subtree (cached).

        ``units[level]`` lists the subtree's level-``level`` units in
        pre-order (so every unit's children are consecutive in the next
        level's list), ``pos[level]`` maps unit id to its slot,
        ``offsets[level]`` are the ``reduceat`` boundaries that reduce the
        level-``level+1`` axis onto level ``level``, and ``base_idx`` holds
        the dense base-unit indexes in the same pre-order.
        """
        cached = self._layouts.get(root)
        if cached is not None:
            return cached
        num_levels = self.hierarchy.num_levels
        units: Dict[int, List[str]] = {level: [] for level in range(1, num_levels + 1)}
        counts: Dict[int, List[int]] = {level: [] for level in range(1, num_levels)}
        stack = [root]
        while stack:
            unit = self.hierarchy.unit(stack.pop())
            units[unit.level].append(unit.unit_id)
            if not unit.is_base:
                counts[unit.level].append(len(unit.children_ids))
                stack.extend(reversed(unit.children_ids))
        # Reduction plan per level: children are consecutive in the next
        # level's pre-order, so a uniform fan-out reduces with a plain
        # reshape + min (SIMD-friendly, unlike ufunc.reduceat); mixed
        # fan-outs are grouped by count and gathered per group.
        plans: Dict[int, object] = {}
        for level, level_counts in counts.items():
            count_arr = np.array(level_counts, dtype=np.int64)
            offsets = np.concatenate(([0], np.cumsum(count_arr)[:-1]))
            if count_arr.size and (count_arr == count_arr[0]).all():
                plans[level] = ("uniform", int(count_arr[0]))
            else:
                groups = []
                for count in np.unique(count_arr):
                    parent_pos = np.flatnonzero(count_arr == count)
                    child_idx = offsets[parent_pos][:, None] + np.arange(count)[None, :]
                    groups.append((parent_pos, child_idx))
                plans[level] = ("grouped", groups)
        layout = {
            "units": units,
            "pos": {
                level: {unit_id: slot for slot, unit_id in enumerate(level_units)}
                for level, level_units in units.items()
            },
            "plans": plans,
            "base_idx": np.array(
                [self.hierarchy.base_unit_index(unit_id) for unit_id in units[num_levels]],
                dtype=np.uint64,
            ),
        }
        self._layouts[root] = layout
        return layout

    def _hash_subtree_group(
        self,
        out: np.ndarray,
        cells: Sequence[STCell],
        positions: Sequence[int],
        root: str,
    ) -> None:
        """Fill ``out[positions]`` for all cells under one level-1 subtree.

        Grids are laid out time-major -- ``(n_times, n_units, n_h)`` -- so
        every reduction and gather touches contiguous length-``n_h`` rows:
        the hierarchy minimum reduces a middle axis with a SIMD-friendly
        contiguous inner axis, and scattering a cell's hash vector into the
        output is a straight row copy.
        """
        layout = self._subtree_layout(root)
        num_levels = self.hierarchy.num_levels
        pos_of = layout["pos"]

        by_level: Dict[int, Tuple[List[int], List[int], List[int]]] = {}
        times_set = set()
        for position in positions:
            cell = cells[position]
            level = self.hierarchy.unit(cell.unit).level
            bucket = by_level.setdefault(level, ([], [], []))
            bucket[0].append(cell.time)
            bucket[1].append(pos_of[level][cell.unit])
            bucket[2].append(position)
            times_set.add(cell.time)
        times = np.array(sorted(times_set), dtype=np.uint64)
        min_level = min(by_level)
        level_refs = {
            level: (
                np.searchsorted(times, np.array(cell_times, dtype=np.uint64)),
                np.array(unit_slots, dtype=np.int64),
                np.array(out_positions, dtype=np.int64),
            )
            for level, (cell_times, unit_slots, out_positions) in by_level.items()
        }

        prime = np.uint64(_MERSENNE_PRIME)
        base_idx = layout["base_idx"]
        # Unit term of the decomposed universal hash: (a*i + b) mod p per
        # (base descendant, function); a, i < 2^31 so products fit in uint64.
        # Once reduced mod p both terms fit in 32 bits, so the grid-sized
        # arithmetic below runs entirely in uint32: the sum of two residues
        # is < 2p - 1 < 2^32 (no overflow), and 32-bit arithmetic moves half
        # the bytes of the uint64 equivalent.
        unit_term = (
            (base_idx[:, None] * self._a[None, :] + self._b[None, :]) % prime
        ).astype(np.uint32)

        num_base = base_idx.size
        chunk = max(1, _BULK_CHUNK_ELEMENTS // max(1, self.num_hashes * num_base))
        for start in range(0, times.size, chunk):
            chunk_times = times[start : start + chunk]
            # Time term: a * ((t*|L|) mod p) mod p, shape (n_t, n_h).
            time_codes = (chunk_times * np.uint64(self.num_base_units)) % prime
            time_term = ((time_codes[:, None] * self._a[None, :]) % prime).astype(np.uint32)
            # One broadcasted addition replaces the per-element
            # multiplication of the naive kernel: a*(t*|L| + i) + b splits
            # into the precomputed unit and time residues.  Both residues are
            # < p, so reducing their sum mod p is a single conditional
            # subtract -- no division pass over the grid.
            grid = time_term[:, None, :] + unit_term[None, :, :]
            prime32 = np.uint32(_MERSENNE_PRIME)
            np.subtract(grid, prime32, out=grid, where=grid >= prime32)
            grid %= np.uint32(self.hash_range)
            # Hierarchical parent-constraint minima: level l's grid is the
            # minimum of level l+1 over each unit's (consecutive) children.
            level_grids = {num_levels: grid}
            for level in range(num_levels - 1, min_level - 1, -1):
                kind, plan = layout["plans"][level]
                n_t = grid.shape[0]
                if kind == "uniform":
                    n_child = grid.shape[1]
                    grid = grid.reshape(n_t, n_child // plan, plan, -1).min(axis=2)
                else:
                    n_parents = sum(parent_pos.size for parent_pos, _child_idx in plan)
                    reduced = np.empty((n_t, n_parents, self.num_hashes), dtype=grid.dtype)
                    for parent_pos, child_idx in plan:
                        reduced[:, parent_pos, :] = grid[:, child_idx, :].min(axis=2)
                    grid = reduced
                level_grids[level] = grid
            stop = start + chunk_times.size
            for level, (time_slots, unit_slots, out_positions) in level_refs.items():
                in_chunk = (time_slots >= start) & (time_slots < stop)
                if not in_chunk.any():
                    continue
                # Row-wise scatter: each cell's hash vector is a contiguous
                # row of the time-major grid, so this is a block of memcpys.
                out[out_positions[in_chunk]] = level_grids[level][
                    time_slots[in_chunk] - start, unit_slots[in_chunk], :
                ]

    def warm_cache(self, cells: Iterable[STCell]) -> int:
        """Bulk-hash ``cells`` into the per-cell cache; returns how many were new.

        Used by the batch query executor: the union of every query entity's
        cells is hashed once with the vectorised kernel, so individual
        searches then hit the cache instead of hashing cell by cell.
        """
        missing = [
            cell
            for cell in dict.fromkeys(cells)
            if (cell.time, cell.unit) not in self._cell_cache
        ]
        if not missing:
            return 0
        matrix = self.hash_cells_bulk(missing)
        for row, cell in zip(matrix, missing):
            self._cell_cache[(cell.time, cell.unit)] = row
        return len(missing)

    # ------------------------------------------------------------------
    # Coefficient export / restore (the snapshot codec)
    # ------------------------------------------------------------------
    def export_coefficients(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of the universal-hash coefficient vectors ``(a, b)``.

        Persisting the coefficients (rather than trusting the RNG seed to
        regenerate them) makes restored families bitwise-identical even if a
        future numpy changes its bit-generator streams.
        """
        return self._a.copy(), self._b.copy()

    def restore_coefficients(self, a: np.ndarray, b: np.ndarray) -> None:
        """Install previously exported coefficients, replacing the seeded ones.

        Raises
        ------
        ValueError
            If the arrays do not match the family size or fall outside the
            ranges universal hashing requires.
        """
        a = np.asarray(a, dtype=np.uint64)
        b = np.asarray(b, dtype=np.uint64)
        if a.shape != (self.num_hashes,) or b.shape != (self.num_hashes,):
            raise ValueError(
                f"coefficient arrays must have shape ({self.num_hashes},), "
                f"got {a.shape} and {b.shape}"
            )
        prime = np.uint64(_MERSENNE_PRIME)
        if not ((a >= 1) & (a < prime)).all() or not (b < prime).all():
            raise ValueError("hash coefficients out of range for the universal family")
        self._a = a
        self._b = b
        self._cell_cache.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_size(self) -> int:
        """Number of cached cell hash vectors (useful for memory accounting)."""
        return len(self._cell_cache)

    def clear_cache(self) -> None:
        """Drop the cell hash cache (e.g. between unrelated experiments)."""
        self._cell_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HierarchicalHashFamily(num_hashes={self.num_hashes}, "
            f"range={self.hash_range}, seed={self.seed})"
        )
