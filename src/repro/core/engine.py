"""The high-level facade: :class:`TraceQueryEngine`.

The engine wires together the pieces a downstream user needs to run top-k
queries over digital traces:

1. a :class:`~repro.traces.dataset.TraceDataset` (the digital traces and the
   sp-index),
2. an association degree measure (default: the paper's
   :class:`~repro.measures.adm.HierarchicalADM` with ``u = v = 2``),
3. the hierarchical MinHash family and per-entity signatures,
4. the MinSigTree, and
5. the best-first top-k searcher.

Typical usage::

    engine = TraceQueryEngine(dataset, num_hashes=256, seed=7)
    engine.build()
    result = engine.top_k("device-123", k=10)
    for entity, degree in result:
        print(entity, degree)

Index construction routes signatures through the vectorised bulk pipeline
(``EngineConfig.bulk_signatures``, on by default; bitwise-identical to the
per-entity path), and batched queries -- :meth:`TraceQueryEngine.top_k_many`
/ :meth:`TraceQueryEngine.top_k_batch` -- run through the
:class:`~repro.core.query.BatchTopKExecutor`, which shares query-cell
hashing across the batch and can fan out over worker threads
(``EngineConfig.batch_workers``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.hashing import HierarchicalHashFamily
from repro.core.minsigtree import MinSigTree
from repro.core.query import (
    BatchTopKExecutor,
    BatchTopKResult,
    SequenceFetcher,
    TopKResult,
    TopKSearcher,
)
from repro.core.signatures import SignatureComputer
from repro.measures.adm import HierarchicalADM
from repro.obs.trace import SpanContext
from repro.measures.base import AssociationMeasure
from repro.traces.dataset import TraceDataset
from repro.traces.events import PresenceInstance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.measures.base import AssociationMeasure as _Measure
    from repro.service.cache import QueryResultCache

__all__ = ["EngineConfig", "ExpiryReport", "TraceQueryEngine"]

PathLike = Union[str, Path]


@dataclass
class ExpiryReport:
    """The outcome of one :meth:`TraceQueryEngine.expire_events` call.

    Retraction is *incremental and tiered*: entities whose whole trace
    expired are removed from the index; surviving entities are re-signed
    from their remaining records, and the tree is only touched when the new
    signature actually differs (expired cells that never achieved a level
    minimum leave the signature bitwise-unchanged, so the entity stays
    where it is and no group-level looseness is introduced).
    """

    #: The watermark passed to ``expire_events``: every record with
    #: ``end <= cutoff`` was dropped.
    cutoff: int
    #: Total presence instances removed across all entities.
    expired_records: int = 0
    #: Entities whose whole trace expired (dropped from dataset and index).
    removed_entities: List[str] = field(default_factory=list)
    #: Surviving entities whose signature changed and were re-indexed.
    resigned_entities: List[str] = field(default_factory=list)
    #: Surviving entities that lost records but kept an identical signature
    #: (the tree was not touched for them).
    unchanged_entities: List[str] = field(default_factory=list)

    @property
    def affected_entities(self) -> List[str]:
        """Every entity that lost at least one record."""
        return self.removed_entities + self.resigned_entities + self.unchanged_entities

    @property
    def changed_index(self) -> bool:
        """Whether the MinSigTree was modified at all."""
        return bool(self.removed_entities or self.resigned_entities)

    def absorb(self, other: "ExpiryReport") -> None:
        """Fold another report into this one (sharded aggregation)."""
        self.expired_records += other.expired_records
        self.removed_entities.extend(other.removed_entities)
        self.resigned_entities.extend(other.resigned_entities)
        self.unchanged_entities.extend(other.unchanged_entities)


@dataclass
class EngineConfig:
    """Tunable knobs of the engine.

    Attributes
    ----------
    num_hashes:
        Number of hash functions ``n_h`` (signature dimensionality).  The
        paper sweeps 200–2000; the default of 256 is a good laptop-scale
        compromise between pruning power and indexing cost.
    seed:
        Seed of the hash family (index construction is deterministic given
        the seed and the dataset).
    store_full_signatures:
        Keep full group-level signatures on MinSigTree nodes (Section 4.2.2's
        storage/pruning trade-off knob; off by default, as in the paper).
    use_full_signatures:
        Evaluate query bounds with the full signatures (requires the above).
    bound_mode:
        ``"lift"`` (default, the paper's Theorem 4 construction) or
        ``"per_level"`` (strictly admissible, looser); see
        :func:`repro.core.pruning.upper_bound`.
    bulk_signatures:
        Build (and batch-update) signatures through the vectorised bulk
        pipeline (default).  ``False`` falls back to per-entity signing; both
        paths are bitwise-identical, so this is a performance knob only.
        Note one second-order effect: the per-entity path leaves the hash
        family's per-cell cache fully warmed as a side effect, while the
        bulk path bypasses that cache, so the first query touching a cell
        hashes it lazily (batch queries pre-warm their cells regardless).
    batch_workers:
        Default thread-pool size for :meth:`TraceQueryEngine.top_k_many` /
        :meth:`TraceQueryEngine.top_k_batch` fan-out.  ``0`` (default) runs
        batches serially in the calling thread.
    query_cache_size:
        Maximum number of :meth:`TraceQueryEngine.top_k` results kept in the
        engine's LRU query cache (``0``, the default, disables caching).
        Every mutation -- ``add_records``, ``refresh_entities``,
        ``remove_entity``, ``build`` -- invalidates the cache, so cached
        results are always identical to fresh searches.
    columnar_queries:
        Answer queries through the columnar kernel (default): the MinSigTree
        is compiled into flat arrays and bound evaluation / leaf scoring run
        vectorised (see :mod:`repro.core.columnar`).  Results are
        bit-identical to the reference traversal, which ``False`` selects --
        a performance knob only, excluded from the fingerprint like the
        other ones.  The compiled arrays are persisted in snapshots and
        recompiled lazily after any index or data mutation.
    incremental_recompile:
        After mutations, patch the compiled columnar arrays in place for the
        touched entities instead of recompiling the whole kernel (default).
        The patched arrays are byte-identical to a from-scratch compile, so
        this is a performance knob only, excluded from the fingerprint; a
        staleness threshold falls back to a full recompile when too much of
        the index changed (see :meth:`repro.core.columnar.ColumnarTree.patch`).

    Example
    -------
    Keyword overrides passed to the engine win over an explicit config, but
    never reset unmentioned fields, and only the *semantic* fields enter the
    fingerprint that keys caches and stamps snapshots:

    >>> from repro import EngineConfig
    >>> config = EngineConfig(num_hashes=128, batch_workers=4)
    >>> config.with_overrides(seed=9).num_hashes
    128
    >>> fast = config.with_overrides(bulk_signatures=False, query_cache_size=64)
    >>> fast.fingerprint() == config.fingerprint()   # performance knobs only
    True
    >>> config.with_overrides(seed=9).fingerprint() == config.fingerprint()
    False
    """

    num_hashes: int = 256
    seed: int = 0
    store_full_signatures: bool = False
    use_full_signatures: bool = False
    bound_mode: str = "lift"
    bulk_signatures: bool = True
    batch_workers: int = 0
    query_cache_size: int = 0
    columnar_queries: bool = True
    incremental_recompile: bool = True

    def __post_init__(self) -> None:
        if self.num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {self.num_hashes}")
        if self.use_full_signatures and not self.store_full_signatures:
            raise ValueError("use_full_signatures requires store_full_signatures")
        if self.bound_mode not in ("lift", "per_level"):
            raise ValueError(f"unknown bound mode {self.bound_mode!r}")
        if self.batch_workers < 0:
            raise ValueError(f"batch_workers must be >= 0, got {self.batch_workers}")
        if self.query_cache_size < 0:
            raise ValueError(f"query_cache_size must be >= 0, got {self.query_cache_size}")

    def semantic_fields(self) -> Dict[str, object]:
        """The fields that determine index contents and query results.

        Performance knobs (``bulk_signatures``, ``batch_workers``,
        ``query_cache_size``, ``columnar_queries``,
        ``incremental_recompile``) are excluded: they change wall-clock
        time, never a signature or a result.
        """
        return {
            "num_hashes": self.num_hashes,
            "seed": self.seed,
            "store_full_signatures": self.store_full_signatures,
            "use_full_signatures": self.use_full_signatures,
            "bound_mode": self.bound_mode,
        }

    def fingerprint(self) -> str:
        """Stable SHA-256 hex digest of :meth:`semantic_fields`.

        Used to key the query cache and to stamp snapshots: two configs with
        the same fingerprint are guaranteed to produce identical indexes and
        results over the same data.
        """
        canonical = json.dumps(self.semantic_fields(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def with_overrides(self, **overrides: object) -> "EngineConfig":
        """A copy with the given fields replaced.

        Unknown field names raise ``TypeError`` (listing them); fields not
        mentioned keep their current values, so an explicitly-passed config
        is never silently reset to defaults.
        """
        valid = {field.name for field in dataclasses.fields(EngineConfig)}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise TypeError(f"unknown engine options: {unknown}")
        return dataclasses.replace(self, **overrides)


class TraceQueryEngine:
    """End-to-end top-k query processing over a trace dataset.

    Parameters
    ----------
    dataset:
        The digital traces to index.
    measure:
        The association degree measure; defaults to the paper's
        :class:`HierarchicalADM` with ``u = v = 2`` over the dataset's depth.
    config:
        Engine knobs; individual keyword arguments (``num_hashes``, ``seed``,
        ...) are accepted as a convenience and override the config.

    Invariants
    ----------
    * :meth:`build` must run before any query or update; every maintenance
      call (:meth:`add_records`, :meth:`refresh_entities`,
      :meth:`remove_entity`, :meth:`expire_events`) leaves the index
      answering queries exactly as a from-scratch build over the current
      data would (tree *tightness* may differ; results do not, under an
      admissible bound).
    * Index construction is deterministic given the config and dataset, so
      two engines with equal config fingerprints over equal data return
      identical results, ties included.

    Example
    -------
    >>> from repro import SpatialHierarchy, TraceDataset, TraceQueryEngine
    >>> hierarchy = SpatialHierarchy.regular([2, 3])     # 2-level sp-index
    >>> dataset = TraceDataset(hierarchy, horizon=24)
    >>> dataset.add_record("alice", "u2_0_0", time=9, duration=2)
    >>> dataset.add_record("bob", "u2_0_0", time=9, duration=2)
    >>> dataset.add_record("carol", "u2_1_2", time=3, duration=1)
    >>> engine = TraceQueryEngine(dataset, num_hashes=32, seed=7).build()
    >>> engine.top_k("alice", k=2).entities              # carol never co-occurs
    ['bob']
    >>> engine.add_records([PresenceInstance("carol", "u2_0_0", 9, 11)])
    ['carol']
    >>> engine.top_k("alice", k=2).entities
    ['bob', 'carol']
    """

    def __init__(
        self,
        dataset: TraceDataset,
        measure: Optional[AssociationMeasure] = None,
        config: Optional[EngineConfig] = None,
        **overrides: object,
    ) -> None:
        if config is None:
            config = EngineConfig()
        if overrides:
            # Keyword overrides win over the config's values, but fields not
            # mentioned keep whatever the explicit config carried.
            config = config.with_overrides(**overrides)
        self.dataset = dataset
        self.config = config
        self.measure = measure or HierarchicalADM(num_levels=dataset.num_levels)

        self._hash_family: Optional[HierarchicalHashFamily] = None
        self._signature_computer: Optional[SignatureComputer] = None
        self._tree: Optional[MinSigTree] = None
        self._searcher: Optional[TopKSearcher] = None
        # The config is fixed for the engine's lifetime; hash it once so
        # cache keys on the query hot path cost a tuple build, not a SHA-256.
        self._config_fingerprint = self.config.fingerprint()
        self._query_cache: Optional["QueryResultCache"] = None
        if self.config.query_cache_size > 0:
            # Imported lazily: repro.service builds on the engine, so the
            # cache class cannot be a module-level import here.
            from repro.service.cache import QueryResultCache

            self._query_cache = QueryResultCache(self.config.query_cache_size)
        #: Wall-clock seconds spent in the last :meth:`build` call.
        self.last_build_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------
    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has been called."""
        return self._tree is not None

    @property
    def hash_family(self) -> HierarchicalHashFamily:
        """The hash family (available after :meth:`build`)."""
        self._require_built()
        assert self._hash_family is not None
        return self._hash_family

    @property
    def tree(self) -> MinSigTree:
        """The MinSigTree (available after :meth:`build`)."""
        self._require_built()
        assert self._tree is not None
        return self._tree

    @property
    def searcher(self) -> TopKSearcher:
        """The top-k searcher bound to the current index."""
        self._require_built()
        assert self._searcher is not None
        return self._searcher

    def _require_built(self) -> None:
        if self._tree is None:
            raise RuntimeError("the engine index has not been built yet; call build() first")

    def build(self) -> "TraceQueryEngine":
        """Compute signatures for every entity and build the MinSigTree.

        Signatures go through the vectorised bulk pipeline unless the config
        disables it (``bulk_signatures=False``); either way the resulting
        index is identical.
        """
        started = time.perf_counter()
        horizon = max(self.dataset.horizon, 1)
        self._hash_family = HierarchicalHashFamily(
            self.dataset.hierarchy,
            horizon=horizon,
            num_hashes=self.config.num_hashes,
            seed=self.config.seed,
        )
        self._signature_computer = SignatureComputer(self._hash_family)
        method = "bulk" if self.config.bulk_signatures else "per_entity"
        signatures = self._signature_computer.signatures_for_dataset(self.dataset, method=method)
        self._tree = MinSigTree.build(
            signatures,
            num_levels=self.dataset.num_levels,
            num_hashes=self.config.num_hashes,
            store_full_signatures=self.config.store_full_signatures,
        )
        self._searcher = TopKSearcher(
            self._tree,
            self.dataset,
            self.measure,
            self._hash_family,
            use_full_signatures=self.config.use_full_signatures,
            bound_mode=self.config.bound_mode,
            columnar=self.config.columnar_queries,
            incremental=self.config.incremental_recompile,
        )
        self.last_build_seconds = time.perf_counter() - started
        self._invalidate_query_cache()
        return self

    def _adopt_index(self, hash_family: HierarchicalHashFamily, tree: MinSigTree) -> None:
        """Install an externally reconstructed index (the snapshot load path).

        The caller guarantees that ``tree`` was built from signatures of
        ``hash_family`` over this engine's dataset; everything downstream
        (signature computer, searcher) is wired here so updates and queries
        behave exactly as after :meth:`build`.
        """
        previous = self._searcher
        self._hash_family = hash_family
        self._signature_computer = SignatureComputer(hash_family)
        self._tree = tree
        self._searcher = TopKSearcher(
            tree,
            self.dataset,
            self.measure,
            hash_family,
            use_full_signatures=self.config.use_full_signatures,
            bound_mode=self.config.bound_mode,
            columnar=self.config.columnar_queries,
            incremental=self.config.incremental_recompile,
        )
        # Re-adopting the same tree (e.g. the sharded hash-family sharing
        # pass) must not throw away an already-compiled columnar kernel or
        # a pending snapshot loader.
        if previous is not None:
            self._searcher.carry_compiled_from(previous)
        self._invalidate_query_cache()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike, extra_meta: Optional[Dict[str, object]] = None) -> Path:
        """Write the built index (and dataset) to a snapshot directory.

        See :mod:`repro.storage.snapshot` for the format; the snapshot can
        be restored with :meth:`load` in another process without re-signing.
        Saves are staged and swapped in atomically, so a crash mid-save
        never leaves a half-written snapshot behind.  ``extra_meta`` is an
        optional JSON-serialisable dict stored verbatim in the manifest
        (the serving tier's WAL position lives there).

        Example
        -------
        >>> import tempfile
        >>> from repro import SpatialHierarchy, TraceDataset, TraceQueryEngine
        >>> hierarchy = SpatialHierarchy.regular([2, 2])
        >>> dataset = TraceDataset(hierarchy, horizon=12)
        >>> dataset.add_record("a", "u2_0_0", time=1, duration=2)
        >>> dataset.add_record("b", "u2_0_0", time=1, duration=2)
        >>> engine = TraceQueryEngine(dataset, num_hashes=16).build()
        >>> snapdir = tempfile.mkdtemp()
        >>> served = TraceQueryEngine.load(engine.save(snapdir))
        >>> served.top_k("a", k=1).items == engine.top_k("a", k=1).items
        True
        """
        from repro.storage.snapshot import save_engine_snapshot

        return save_engine_snapshot(self, path, extra_meta=extra_meta)

    @classmethod
    def load(
        cls, path: PathLike, measure: Optional["_Measure"] = None
    ) -> "TraceQueryEngine":
        """Restore a query-ready engine from a snapshot directory.

        The restored engine is bitwise-identical to the saved one: same
        signatures, tree structure, results, and orderings.  ``measure``
        overrides the serialized measure (required for custom measures that
        the snapshot registry cannot reconstruct).
        """
        from repro.storage.snapshot import load_engine_snapshot

        return load_engine_snapshot(path, measure=measure)

    def index_size_bytes(self) -> int:
        """Approximate size of the MinSigTree in bytes."""
        return self.tree.size_bytes()

    def runtime_stats(self) -> Dict[str, object]:
        """Operational counters for serving dashboards (``/v1/stats``).

        A plain JSON-serialisable dict: dataset size, index looseness
        (:attr:`MinSigTree.loose_operations` -- removals/relocations that
        left a surviving ancestor's group signature untight), and the query
        cache's counter snapshot (``None`` when caching is disabled).
        Safe to call from another thread between queries; the cache
        snapshot is internally locked.
        """
        stats: Dict[str, object] = {
            "kind": "single",
            "built": self.is_built,
            "entities": self.dataset.num_entities,
            "presences": self.dataset.num_presences,
            "loose_operations": self.tree.loose_operations if self.is_built else 0,
            "index_size_bytes": self.index_size_bytes() if self.is_built else 0,
            "columnar_queries": self.config.columnar_queries,
        }
        cache = self._query_cache
        stats["cache"] = cache.stats_snapshot() if cache is not None else None
        return stats

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def top_k(
        self,
        query_entity: str,
        k: int = 10,
        sequence_fetcher: Optional[SequenceFetcher] = None,
        approximation: float = 0.0,
        trace: Optional[SpanContext] = None,
    ) -> TopKResult:
        """Return the ``k`` entities most associated with ``query_entity``.

        ``approximation`` > 0 enables approximate top-k with an additive
        guarantee (see :meth:`repro.core.query.TopKSearcher.search`).

        With ``EngineConfig.query_cache_size > 0`` repeated queries are
        served from an LRU cache (custom ``sequence_fetcher`` calls bypass
        it -- the fetcher may have side effects the caller wants).

        ``trace`` (a :class:`repro.obs.trace.SpanContext`, default
        ``None``) attaches cache-lookup and kernel-stage spans to the
        query; it never changes the result.
        """
        cache = self._query_cache
        if cache is not None and sequence_fetcher is None:
            key = self._query_cache_key(query_entity, k, approximation)
            if trace is None:
                return cache.fetch_or_compute(
                    key,
                    lambda: self.searcher.search(query_entity, k, approximation=approximation),
                )
            # Same get -> compute -> put(copy) protocol fetch_or_compute
            # implements, unrolled so the stages can be spanned.
            lookup_span = trace.begin("cache.lookup")
            cached = cache.get(key)
            lookup_span.end(hit=cached is not None)
            if cached is not None:
                return cached
            result = self.searcher.search(
                query_entity, k, approximation=approximation, trace=trace
            )
            cache.put(key, result.copy())
            return result
        return self.searcher.search(
            query_entity,
            k,
            sequence_fetcher=sequence_fetcher,
            approximation=approximation,
            trace=trace,
        )

    def _query_cache_key(self, query_entity: str, k: int, approximation: float) -> tuple:
        """The cache key shared by the single and batched query paths."""
        return (query_entity, k, approximation, self._config_fingerprint)

    @property
    def query_cache(self) -> Optional["QueryResultCache"]:
        """The LRU query cache, or ``None`` when caching is disabled."""
        return self._query_cache

    def configure_query_cache(self, size: int) -> None:
        """Enable, resize, or disable (``size=0``) the query cache.

        The serving layer's runtime hook (``repro serve --cache N``): the
        engine construction path normally fixes the cache from
        ``EngineConfig.query_cache_size``, but a snapshot-loaded engine
        inherits the snapshot's config, and an operator may want a
        different cache for the serving workload.  Replacing the cache
        starts it empty, which is trivially consistent.
        """
        if size < 0:
            raise ValueError(f"query cache size must be >= 0, got {size}")
        self.config = self.config.with_overrides(query_cache_size=size)
        if size > 0:
            from repro.service.cache import QueryResultCache

            self._query_cache = QueryResultCache(size)
        else:
            self._query_cache = None

    def configure_columnar(self, enabled: bool) -> None:
        """Switch between the columnar kernel and the reference traversal.

        The serving layer's runtime hook (``repro serve --no-columnar`` and
        friends): a snapshot-loaded engine inherits the snapshot's config,
        and an operator may want the reference path for debugging or A/B
        latency measurements.  Results are identical either way; switching
        costs at most one lazy recompile on the next search.
        """
        self.config = self.config.with_overrides(columnar_queries=bool(enabled))
        if self._searcher is not None:
            self._searcher.columnar = bool(enabled)

    def _invalidate_query_cache(self) -> None:
        if self._query_cache is not None:
            self._query_cache.clear()

    def top_k_many(
        self,
        query_entities: Sequence[str],
        k: int = 10,
        workers: Optional[int] = None,
    ) -> List[TopKResult]:
        """Answer one top-k query per query entity (order preserved).

        Routed through the :class:`BatchTopKExecutor`, so the union of query
        cells is hashed once and -- when ``workers`` (or the config's
        ``batch_workers``) exceeds 1 -- queries fan out over a thread pool.
        Results are identical to calling :meth:`top_k` per entity.
        """
        return self.top_k_batch(query_entities, k, workers=workers).results

    def top_k_batch(
        self,
        query_entities: Sequence[str],
        k: int = 10,
        workers: Optional[int] = None,
        approximation: float = 0.0,
        traces: Optional[Sequence[Optional[SpanContext]]] = None,
    ) -> BatchTopKResult:
        """Answer a batch of top-k queries and return the aggregate report.

        With the query cache enabled, queries already cached are served from
        it and only the misses run through the batch executor -- the same
        semantics :meth:`top_k` has, so single and batched serving paths hit
        the same cache.

        ``traces`` is aligned with ``query_entities``; non-``None`` entries
        receive per-query cache/kernel spans.  Results are unaffected.
        """
        cache = self._query_cache
        if cache is None:
            if traces is None:
                return self.batch_executor(workers=workers).run(
                    query_entities, k, approximation=approximation
                )
            return self.batch_executor(workers=workers).run(
                query_entities, k, approximation=approximation, traces=traces
            )
        started = time.perf_counter()
        results: List[Optional[TopKResult]] = []
        miss_positions: List[int] = []
        for position, query_entity in enumerate(query_entities):
            lookup_span = (
                traces[position].begin("cache.lookup")
                if traces is not None and traces[position] is not None
                else None
            )
            cached = cache.get(self._query_cache_key(query_entity, k, approximation))
            if lookup_span is not None:
                lookup_span.end(hit=cached is not None)
            results.append(cached)
            if cached is None:
                miss_positions.append(position)
        if miss_positions:
            missing = [query_entities[position] for position in miss_positions]
            miss_traces = (
                [traces[position] for position in miss_positions]
                if traces is not None
                else None
            )
            if miss_traces is None:
                batch = self.batch_executor(workers=workers).run(
                    missing, k, approximation=approximation
                )
            else:
                batch = self.batch_executor(workers=workers).run(
                    missing, k, approximation=approximation, traces=miss_traces
                )
            for position, result in zip(miss_positions, batch.results):
                results[position] = result
                cache.put(
                    self._query_cache_key(result.query_entity, k, approximation),
                    result.copy(),
                )
            workers_used = batch.workers
            warmed = batch.warmed_cells
        else:
            workers_used = 0
            warmed = 0
        return BatchTopKResult(
            results=[result for result in results if result is not None],
            wall_seconds=time.perf_counter() - started,
            workers=workers_used,
            warmed_cells=warmed,
        )

    def batch_executor(self, workers: Optional[int] = None) -> BatchTopKExecutor:
        """A :class:`BatchTopKExecutor` bound to the current index."""
        effective = self.config.batch_workers if workers is None else int(workers)
        return BatchTopKExecutor(self.searcher, workers=effective)

    # ------------------------------------------------------------------
    # Incremental maintenance (Section 4.2.3)
    # ------------------------------------------------------------------
    def _signature_matrices(self, entities: Sequence[str]) -> Dict[str, np.ndarray]:
        """Fresh signature matrices for ``entities`` from their current traces.

        Multi-entity batches go through the vectorised bulk pipeline (when
        enabled), so a Figure 7.9-style update touching many entities costs a
        handful of broadcasted hash calls instead of one pass per entity.
        """
        assert self._signature_computer is not None
        if len(entities) > 1 and self.config.bulk_signatures:
            return self._signature_computer.bulk_signature_matrices(self.dataset, entities)
        return {
            entity: self._signature_computer.signature_matrix(
                self.dataset.cell_sequence(entity)
            )
            for entity in entities
        }

    def _resign(self, entities: Sequence[str]) -> None:
        """Re-sign ``entities`` and re-insert them into the MinSigTree."""
        assert self._tree is not None
        matrices = self._signature_matrices(entities)
        for entity in entities:
            self._tree.update(entity, matrices[entity])

    def add_records(self, presences: Iterable[PresenceInstance]) -> List[str]:
        """Append new trace records and re-index the affected entities.

        New entities are inserted; existing ones are removed from their
        current leaf, re-signed, and re-inserted (the Figure 7.9 update path).
        Batches touching several entities are re-signed through the bulk
        pipeline.  Returns the list of affected entity identifiers.
        """
        self._require_built()
        # Order-preserving dedup: a dict keeps first-seen order and makes
        # membership O(1), so a batch of B presences costs O(B) instead of
        # the O(B^2) a list-membership scan would.
        affected: Dict[str, None] = {}
        for presence in presences:
            self.dataset.add_presence(presence)
            affected[presence.entity] = None
        ordered = list(affected)
        self._resign(ordered)
        self._invalidate_query_cache()
        return ordered

    def refresh_entities(self, entities: Iterable[str]) -> None:
        """Re-sign and re-insert entities whose traces changed out of band."""
        self._require_built()
        self._resign(list(entities))
        self._invalidate_query_cache()

    def remove_entity(self, entity: str) -> None:
        """Drop an entity from both the dataset and the index."""
        self._require_built()
        assert self._tree is not None
        self.dataset.remove_entity(entity)
        if entity in self._tree:
            self._tree.remove(entity)
        self._invalidate_query_cache()

    # ------------------------------------------------------------------
    # Streaming maintenance: windowed expiry and compaction
    # ------------------------------------------------------------------
    def expire_events(self, cutoff: int) -> ExpiryReport:
        """Drop every record with ``end <= cutoff`` and retract it from the index.

        The sliding-window half of the streaming subsystem (the ingest half
        is :meth:`add_records`; :class:`repro.streaming.EventIngestor` drives
        both).  Retraction is incremental where it can be exact:

        * entities whose whole trace expired are removed from the index;
        * surviving entities are re-signed from their remaining records
          through the bulk pipeline, but the tree is only touched when the
          fresh signature differs from the indexed one -- expired cells that
          never achieved a per-level minimum change nothing;
        * group-level signatures of surviving ancestor nodes are *not*
          re-tightened (they stay valid lower bounds, exactly as after
          :meth:`MinSigTree.remove`), so heavy expiry gradually weakens
          pruning without ever affecting results.  :meth:`compact` -- called
          periodically by the streaming layer -- restores full tightness.

        Returns an :class:`ExpiryReport`; when nothing expired the index and
        the query cache are untouched.
        """
        self._require_built()
        assert self._tree is not None
        removed_counts = self.dataset.expire_before(cutoff)
        report = ExpiryReport(cutoff=cutoff, expired_records=sum(removed_counts.values()))
        if not removed_counts:
            return report
        survivors = []
        for entity in removed_counts:
            if entity in self.dataset:
                survivors.append(entity)
            else:
                if entity in self._tree:
                    self._tree.remove(entity)
                report.removed_entities.append(entity)
        if survivors:
            matrices = self._signature_matrices(survivors)
            for entity in survivors:
                matrix = matrices[entity]
                if entity in self._tree and np.array_equal(
                    matrix, self._tree.signature_of(entity)
                ):
                    report.unchanged_entities.append(entity)
                else:
                    self._tree.update(entity, matrix)
                    report.resigned_entities.append(entity)
        self._invalidate_query_cache()
        return report

    def compact(self) -> "TraceQueryEngine":
        """Re-tighten every group-level signature by rebuilding the tree.

        Signatures are *not* recomputed -- the stored per-entity matrices are
        re-inserted, so compaction costs one tree construction and zero hash
        evaluations.  Useful after many :meth:`remove_entity` /
        :meth:`expire_events` calls, when routing values left loose by
        removals (see :attr:`MinSigTree.loose_operations`) have eroded
        pruning effectiveness.  Results are unchanged under an admissible
        bound; under the default ``lift`` bound compaction restores exactly
        the pruning a from-scratch build would have.
        """
        self._require_built()
        assert self._tree is not None
        assert self._searcher is not None
        self._tree.rebuild()
        # Compaction pays for the one full kernel recompile itself, so the
        # first query afterwards is served from an already-fresh kernel
        # instead of compiling again on the query path.
        self._searcher.refresh_compiled()
        self._invalidate_query_cache()
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        built = "built" if self.is_built else "not built"
        return (
            f"TraceQueryEngine({self.dataset.describe()}, measure={self.measure.name}, "
            f"num_hashes={self.config.num_hashes}, {built})"
        )
