"""Top-k query processing over the MinSigTree (Chapter 5, Algorithm 2).

The searcher runs a best-first traversal of the MinSigTree.  Every node is
assigned an upper bound on the association degree between the query entity
and any entity in its subtree (Theorem 4, computed from the node's partial
pruned set); nodes are explored in decreasing bound order, leaves have their
entities scored exactly, and the search stops as soon as the k-th best exact
score is at least the best outstanding bound (early termination).

Batched execution is a first-class API: :class:`BatchTopKExecutor` answers
many queries over one index, pre-hashing the union of all query cells with
the vectorised bulk kernel (so overlapping query footprints are hashed once)
and optionally fanning queries out over a ``concurrent.futures`` thread
pool.  Results are guaranteed identical -- including tie-breaks -- to
running :meth:`TopKSearcher.search` serially per query.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, MutableMapping, Optional, Sequence, Tuple

from repro.core.columnar import (
    ColumnarQueryContext,
    ColumnarTree,
    ColumnarUnsupportedQuery,
)
from repro.core.minsigtree import MinSigTree, MinSigTreeNode
from repro.core.pruning import PruningState, QueryHashes, upper_bound
from repro.core.hashing import HierarchicalHashFamily
from repro.measures.base import AssociationMeasure
from repro.obs.trace import SpanContext
from repro.traces.dataset import TraceDataset
from repro.traces.events import CellSequence

__all__ = [
    "BatchTopKExecutor",
    "BatchTopKResult",
    "QueryStats",
    "TopKResult",
    "TopKSearcher",
    "fan_out_queries",
]

SequenceFetcher = Callable[[str], CellSequence]


def fan_out_queries(
    run_one: Callable[..., "TopKResult"],
    query_entities: Sequence,
    workers: int,
) -> List["TopKResult"]:
    """Run one search per query, serially or over a thread pool.

    The single dispatch rule shared by :class:`BatchTopKExecutor` and the
    sharded engine: ``workers <= 1`` (or a single query) runs in the calling
    thread, anything larger uses a pool capped at the query count.  Results
    preserve query order either way.  The items need not be entity strings
    -- traced batch paths fan out over query *indices* so each call can
    pick up its own trace context.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers <= 1 or len(query_entities) <= 1:
        return [run_one(entity) for entity in query_entities]
    pool_size = min(workers, len(query_entities))
    with ThreadPoolExecutor(max_workers=pool_size) as pool:
        return list(pool.map(run_one, query_entities))


def _pruning_attributes(stats: "QueryStats") -> dict:
    """Span attributes summarising a search's pruning behaviour.

    ``nodes_pruned`` counts nodes whose bound was evaluated but that were
    never popped -- bound evaluations plus the root (pushed without one)
    minus pops; clamped at zero for the degenerate empty-tree case.
    """
    return {
        "nodes_visited": stats.nodes_visited,
        "nodes_pruned": max(stats.bound_computations + 1 - stats.nodes_visited, 0),
        "leaves_visited": stats.leaves_visited,
        "bound_computations": stats.bound_computations,
        "entities_scored": stats.entities_scored,
        "terminated_early": stats.terminated_early,
    }


class _ReverseOrderStr(str):
    """A string that sorts in reverse lexicographic order.

    Used inside the result heap so that, among candidates with equal
    scores, the heap root (the entry evicted first) is the lexicographically
    *largest* entity.  The retained set is then exactly the top-k under the
    ``(-score, entity)`` order the final ranking uses -- deterministic and
    independent of leaf traversal order, which is what lets a sharded
    deployment merge per-shard answers into the identical global top-k.
    """

    __slots__ = ()

    def __lt__(self, other: str) -> bool:
        return str.__gt__(self, other)

    def __le__(self, other: str) -> bool:
        return str.__ge__(self, other)

    def __gt__(self, other: str) -> bool:
        return str.__lt__(self, other)

    def __ge__(self, other: str) -> bool:
        return str.__le__(self, other)


@dataclass
class QueryStats:
    """Work counters collected while answering one top-k query."""

    #: Number of candidate entities whose exact association degree was computed.
    entities_scored: int = 0
    #: Number of MinSigTree nodes popped from the candidate queue.
    nodes_visited: int = 0
    #: Number of leaf nodes whose entities were scored.
    leaves_visited: int = 0
    #: Number of upper-bound evaluations (one per child pushed).
    bound_computations: int = 0
    #: Whether the early-termination condition fired before the queue drained.
    terminated_early: bool = False
    #: Total number of entities in the dataset (excluding nobody).
    population: int = 0
    #: Result size requested.
    k: int = 0

    @property
    def checked_fraction(self) -> float:
        """Fraction of the population whose exact score was computed."""
        if self.population == 0:
            return 0.0
        return self.entities_scored / self.population

    @property
    def pruning_effectiveness(self) -> float:
        """Fraction of the population pruned without exact scoring.

        This is the "higher is better" orientation used by Figures 7.3 and
        7.7 of the paper; :attr:`definition5_pe` gives the literal
        Definition 5 quantity (extra entities checked, lower is better) used
        by Figures 7.4 and 7.5.
        """
        return max(0.0, min(1.0, 1.0 - self.checked_fraction))

    @property
    def definition5_pe(self) -> float:
        """``(|E'| - k) / |E|`` exactly as in Definition 5 (lower is better)."""
        if self.population == 0:
            return 0.0
        return max(0, self.entities_scored - self.k) / self.population


@dataclass
class TopKResult:
    """The outcome of one top-k query."""

    query_entity: str
    #: ``(entity, association degree)`` pairs, best first.
    items: List[Tuple[str, float]] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def entities(self) -> List[str]:
        """Result entities, best first."""
        return [entity for entity, _score in self.items]

    @property
    def scores(self) -> List[float]:
        """Association degrees aligned with :attr:`entities`."""
        return [score for _entity, score in self.items]

    def copy(self) -> "TopKResult":
        """An independent copy (items list and stats are not shared).

        The query caches hand out copies so a caller mutating a returned
        result cannot poison later cache hits.
        """
        return TopKResult(
            query_entity=self.query_entity,
            items=list(self.items),
            stats=dataclasses.replace(self.stats),
        )

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)


class TopKSearcher:
    """Best-first top-k search over a built MinSigTree.

    Parameters
    ----------
    tree:
        The MinSigTree indexing every candidate entity.
    dataset:
        The trace dataset; used (by default) to fetch candidate cell
        sequences for exact scoring and to size the population statistics.
    measure:
        The association degree measure; must satisfy the Section 3.2
        properties for the bounds to be admissible.
    hash_family:
        The hash family the tree was built with (query cells are hashed with
        it to evaluate pruned sets).
    use_full_signatures:
        Evaluate bounds with full node signatures where available (ablation;
        requires the tree to have been built with ``store_full_signatures``).
    bound_mode:
        ``"lift"`` (default) rebuilds the artificial entity's coarse cell sets
        from its surviving base cells, exactly as in Theorem 4; ``"per_level"``
        keeps coarse query cells unless a coarse-level node explicitly pruned
        them, which is strictly admissible but much looser (see
        :func:`repro.core.pruning.upper_bound`).
    columnar:
        Run searches through the columnar kernel (default): the tree is
        compiled into flat arrays (lazily, recompiled whenever the tree or
        dataset mutates) and bound evaluation / leaf scoring are vectorised
        -- see :mod:`repro.core.columnar`.  Results, orderings, and query
        statistics are **bit-identical** to the reference traversal, which
        ``columnar=False`` selects (kept as the equivalence pin and for
        exotic tree/dataset combinations the compiler rejects).

    The engine facade constructs one searcher per built index
    (``engine.searcher``); use it directly when you need the knobs
    :meth:`search` exposes beyond ``TraceQueryEngine.top_k`` -- candidate
    filters, custom sequence fetchers, or a pre-fetched query sequence.

    Example
    -------
    >>> from repro import SpatialHierarchy, TraceDataset, TraceQueryEngine
    >>> hierarchy = SpatialHierarchy.regular([2, 2])
    >>> dataset = TraceDataset(hierarchy, horizon=24)
    >>> for name in ("a", "b", "c"):
    ...     dataset.add_record(name, "u2_0_0", time=4, duration=2)
    >>> searcher = TraceQueryEngine(dataset, num_hashes=16).build().searcher
    >>> result = searcher.search("a", k=5, candidate_filter=lambda e: e != "b")
    >>> result.entities                      # "b" was filtered out
    ['c']
    >>> result.stats.population
    3
    """

    def __init__(
        self,
        tree: MinSigTree,
        dataset: TraceDataset,
        measure: AssociationMeasure,
        hash_family: HierarchicalHashFamily,
        use_full_signatures: bool = False,
        bound_mode: str = "lift",
        columnar: bool = True,
        incremental: bool = True,
    ) -> None:
        if bound_mode not in ("lift", "per_level"):
            raise ValueError(f"unknown bound mode {bound_mode!r}")
        self.tree = tree
        self.dataset = dataset
        self.measure = measure
        self.hash_family = hash_family
        self.use_full_signatures = use_full_signatures
        self.bound_mode = bound_mode
        self.columnar = bool(columnar)
        #: Patch a stale compiled kernel incrementally (splicing only the
        #: touched entities' rows -- see :meth:`ColumnarTree.patch`) instead
        #: of always recompiling from scratch.  Byte-identical either way;
        #: a performance knob only.
        self.incremental = bool(incremental)
        #: Full from-scratch kernel compiles performed by this searcher.
        self.kernel_compiles = 0
        #: Incremental kernel patches performed by this searcher.
        self.kernel_patches = 0
        self._compiled: Optional[ColumnarTree] = None
        self._compiled_loader: Optional[Callable[[], Optional[ColumnarTree]]] = None
        # Serialises (re)compilation so a parallel batch hitting a stale
        # compile runs it once, not once per worker thread.
        self._compile_lock = threading.Lock()

    # ------------------------------------------------------------------
    def compiled_tree(self) -> Optional[ColumnarTree]:
        """The current :class:`ColumnarTree`, compiling/refreshing lazily.

        Returns ``None`` when the columnar kernel is disabled.  A compiled
        tree is reused until the MinSigTree or the dataset mutates (their
        ``mutation_count`` moved) -- streaming flushes, expiries, and
        compactions therefore trigger a refresh on the next search.  A
        deferred snapshot loader (see :meth:`adopt_compiled_loader`) is
        consulted first; then, with :attr:`incremental` on, a stale kernel
        is patched in place of the touched entities
        (:meth:`ColumnarTree.patch` -- byte-identical to a fresh compile at
        delta-proportional cost); a full from-scratch compile is the
        fallback whenever neither applies.
        """
        if not self.columnar:
            return None
        compiled = self._compiled
        if compiled is not None and compiled.matches(self.tree, self.dataset):
            return compiled
        with self._compile_lock:
            # Double-checked: a concurrent searcher may have finished the
            # (re)compile while this thread waited for the lock.
            stale = self._compiled
            if stale is not None and stale.matches(self.tree, self.dataset):
                return stale
            compiled = None
            loader = self._compiled_loader
            if loader is not None:
                self._compiled_loader = None
                compiled = loader()
                if compiled is not None and not compiled.matches(self.tree, self.dataset):
                    # A stale snapshot payload can still seed the patch path.
                    stale = compiled
                    compiled = None
            if compiled is None and stale is not None and self.incremental:
                compiled = stale.patch(self.tree, self.dataset)
                if compiled is not None:
                    self.kernel_patches += 1
            if compiled is None:
                compiled = ColumnarTree.compile(self.tree, self.dataset)
                self.kernel_compiles += 1
            self._compiled = compiled
            return compiled

    def refresh_compiled(self) -> Optional[ColumnarTree]:
        """Bring the compiled kernel up to date *now*, off the query path.

        ``engine.compact()`` calls this right after rebuilding the tree, so
        the compaction -- the designated full-rebuild path -- pays the one
        recompile itself and the first query afterwards starts instantly
        (no second full pass when no mutations intervened).  A no-op when
        the columnar kernel is disabled.
        """
        if not self.columnar:
            return None
        return self.compiled_tree()

    def carry_compiled_from(self, previous: "TopKSearcher") -> None:
        """Inherit a predecessor searcher's compiled state over the same tree.

        Used when a searcher is rebuilt around an unchanged tree/dataset
        (e.g. the sharded hash-family sharing pass re-adopts each shard's
        index): an already-valid compiled kernel, or a still-pending
        snapshot loader (which revalidates on its own), must survive the
        swap instead of forcing a recompile.
        """
        if previous.tree is not self.tree:
            return
        if previous._compiled is not None:
            # Even a stale kernel is worth carrying: compiled_tree()
            # revalidates, and with `incremental` on it seeds the patch
            # path instead of forcing a from-scratch compile.
            self._compiled = previous._compiled
        self._compiled_loader = previous._compiled_loader

    def adopt_compiled_loader(
        self, loader: Callable[[], Optional[ColumnarTree]]
    ) -> None:
        """Install a deferred compiled-tree source (the snapshot load path).

        ``loader`` is invoked at most once, on the first search that needs
        the compiled arrays; it returns a ready-stamped
        :class:`ColumnarTree`, or ``None`` to fall back to a fresh compile
        (e.g. the engine mutated since the snapshot was loaded, or the
        payload failed validation).  Deferring the import keeps snapshot
        cold-start time free of columnar parsing.
        """
        self._compiled_loader = loader

    # ------------------------------------------------------------------
    def search(
        self,
        query_entity: str,
        k: int,
        sequence_fetcher: Optional[SequenceFetcher] = None,
        candidate_filter: Optional[Callable[[str], bool]] = None,
        approximation: float = 0.0,
        query_sequence: Optional[CellSequence] = None,
        fetch_cache: Optional[MutableMapping[str, CellSequence]] = None,
        trace: Optional[SpanContext] = None,
    ) -> TopKResult:
        """Answer a top-k query (Algorithm 2).

        Parameters
        ----------
        query_entity:
            The entity whose closest associates are sought.  Must exist in
            the dataset (it does not need to be indexed in the tree) unless
            ``query_sequence`` is supplied.
        k:
            Number of results requested (``1 <= k < |E|``).
        sequence_fetcher:
            Optional override used to fetch candidate cell sequences; the
            disk-backed store passes an accounting fetcher here so that the
            memory-size experiment can charge I/O for every scored entity.
        candidate_filter:
            Optional predicate; entities for which it returns ``False`` are
            skipped (used by tests and by incremental-maintenance tooling).
        approximation:
            Additive slack for approximate top-k (the paper's first
            future-work item).  With a value ``eps > 0`` the search stops as
            soon as the current k-th best score is within ``eps`` of the best
            outstanding bound, so every returned score is guaranteed to be at
            least ``(true k-th best) - eps``.  ``0`` (default) gives exact
            results under an admissible bound.
        query_sequence:
            Optional pre-fetched ST-cell set sequence of the query entity.
            A sharded deployment passes this so that shards can answer
            queries about entities that live in *other* shards' datasets;
            by default the sequence comes from this searcher's dataset.
        fetch_cache:
            Optional mutable mapping memoising ``sequence_fetcher`` results
            by entity.  A custom fetcher is always memoised for the duration
            of one search; passing an explicit cache shares the memo across
            several searches (``search_many`` and the batch executor do
            this), so one batch fetches each candidate's sequence at most
            once however many queries visit its leaf.  Ignored without a
            custom fetcher -- the dataset's own sequence cache already
            deduplicates fetches.
        trace:
            Optional :class:`repro.obs.trace.SpanContext`.  When given, the
            search emits kernel-stage spans (``kernel.bounds``,
            ``kernel.traverse``, ``kernel.scores``, ``kernel.merge``) with
            the pruning counters attached as attributes.  Tracing never
            changes results -- ``None`` (the default) costs one ``is None``
            check per stage.

        Returns
        -------
        TopKResult
            Up to ``k`` entities with strictly positive association degree,
            best first, plus the work counters.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if approximation < 0.0:
            raise ValueError(f"approximation slack must be >= 0, got {approximation}")
        if sequence_fetcher is None:
            fetch = self.dataset.cell_sequence
        else:
            memo = fetch_cache if fetch_cache is not None else {}

            def fetch(
                entity: str,
                _memo: MutableMapping[str, CellSequence] = memo,
                _fetch: SequenceFetcher = sequence_fetcher,
            ) -> CellSequence:
                sequence = _memo.get(entity)
                if sequence is None:
                    sequence = _fetch(entity)
                    _memo[entity] = sequence
                return sequence

        if query_sequence is None:
            query_sequence = self.dataset.cell_sequence(query_entity)
        query_hashes = QueryHashes.from_sequence(query_sequence, self.hash_family)
        stats = QueryStats(population=self.dataset.num_entities, k=k)

        compiled = self.compiled_tree()
        if compiled is not None:
            return self._search_columnar(
                compiled,
                query_entity,
                k,
                fetch,
                sequence_fetcher is not None,
                candidate_filter,
                approximation,
                query_sequence,
                query_hashes,
                stats,
                trace,
            )
        return self._search_reference(
            query_entity,
            k,
            fetch,
            candidate_filter,
            approximation,
            query_sequence,
            query_hashes,
            stats,
            trace,
        )

    def _search_reference(
        self,
        query_entity: str,
        k: int,
        fetch: SequenceFetcher,
        candidate_filter: Optional[Callable[[str], bool]],
        approximation: float,
        query_sequence: CellSequence,
        query_hashes: QueryHashes,
        stats: QueryStats,
        trace: Optional[SpanContext] = None,
    ) -> TopKResult:
        """The pointer-walking Algorithm 2 traversal (the equivalence pin).

        One ``refine`` + ``upper_bound`` call per child and one
        ``measure.score`` per candidate; the columnar path is pinned
        bit-for-bit against this implementation by the fuzz suite.  In the
        reference path bound evaluation and leaf scoring interleave, so a
        single ``kernel.traverse`` span covers the whole loop.
        """
        traverse_span = trace.begin("kernel.traverse", path="reference") if trace is not None else None
        result_heap: List[Tuple[float, str]] = []  # min-heap of (score, entity)
        tie_breaker = itertools.count()
        candidate_heap: List[Tuple[float, int, MinSigTreeNode, PruningState]] = []

        root_state = PruningState.initial(query_hashes)
        heapq.heappush(candidate_heap, (-1.0, next(tie_breaker), self.tree.root, root_state))

        while candidate_heap:
            negative_bound, _tie, node, state = heapq.heappop(candidate_heap)
            bound = -negative_bound
            stats.nodes_visited += 1

            if len(result_heap) == k and result_heap[0][0] >= bound - approximation:
                stats.terminated_early = True
                break

            if node.is_root or node.children:
                for child in node.children.values():
                    child_state = state.refine(child, query_hashes, self.use_full_signatures)
                    child_bound = min(
                        bound,
                        upper_bound(child_state, query_hashes, self.measure, self.bound_mode),
                    )
                    stats.bound_computations += 1
                    if len(result_heap) == k and result_heap[0][0] >= child_bound - approximation:
                        # The child can never beat the current k-th best
                        # (by more than the allowed approximation slack).
                        continue
                    heapq.heappush(
                        candidate_heap,
                        (-child_bound, next(tie_breaker), child, child_state),
                    )
                continue

            # Leaf: score every contained entity exactly.
            stats.leaves_visited += 1
            for entity in node.entities:
                if entity == query_entity:
                    continue
                if candidate_filter is not None and not candidate_filter(entity):
                    continue
                score = self.measure.score(fetch(entity), query_sequence)
                stats.entities_scored += 1
                if score <= 0.0:
                    continue
                # Heap entries order by (score, reverse-entity), so the root
                # is always the worst under the final (-score, entity)
                # ranking and boundary ties resolve deterministically.
                entry = (score, _ReverseOrderStr(entity))
                if len(result_heap) < k:
                    heapq.heappush(result_heap, entry)
                elif entry > result_heap[0]:
                    heapq.heapreplace(result_heap, entry)

        if traverse_span is not None:
            traverse_span.end(**_pruning_attributes(stats))
        merge_span = trace.begin("kernel.merge") if trace is not None else None
        pairs = [(str(entity), score) for score, entity in result_heap]
        pairs.sort(key=lambda pair: (-pair[1], pair[0]))
        if merge_span is not None:
            merge_span.end(results=len(pairs))
        return TopKResult(query_entity=query_entity, items=pairs, stats=stats)

    def _search_columnar(
        self,
        compiled: ColumnarTree,
        query_entity: str,
        k: int,
        fetch: SequenceFetcher,
        custom_fetch: bool,
        candidate_filter: Optional[Callable[[str], bool]],
        approximation: float,
        query_sequence: CellSequence,
        query_hashes: QueryHashes,
        stats: QueryStats,
        trace: Optional[SpanContext] = None,
    ) -> TopKResult:
        """The columnar Algorithm 2 traversal (bit-identical, vectorised).

        Same best-first loop as :meth:`_search_reference`, but every node's
        Theorem 4 bound is computed in one whole-tree vectorised pass up
        front, and candidate scores come from one whole-dataset
        sparse-intersection pass evaluated lazily at the first leaf visit
        (unless a custom ``sequence_fetcher`` overrides candidate
        sequences, in which case leaf scoring stays per-entity).  The loop
        itself touches only plain Python floats.

        When traced, the three vectorised stages get their own spans:
        ``kernel.bounds`` (whole-tree bound pass), ``kernel.traverse``
        (the best-first loop), ``kernel.scores`` (lazy leaf scoring) and
        ``kernel.merge`` (final ranking).
        """
        bounds_span = trace.begin("kernel.bounds") if trace is not None else None
        try:
            context = ColumnarQueryContext(
                compiled,
                query_hashes,
                query_sequence,
                self.measure,
                self.bound_mode,
                self.use_full_signatures,
            )
        except ColumnarUnsupportedQuery:
            # Hand-built query sequences violating sp-index consistency:
            # answer through the reference traversal instead.
            if bounds_span is not None:
                bounds_span.end(fallback=True)
            return self._search_reference(
                query_entity,
                k,
                fetch,
                candidate_filter,
                approximation,
                query_sequence,
                query_hashes,
                stats,
                trace,
            )
        if bounds_span is not None:
            bounds_span.end(nodes=len(context.node_bounds))
        traverse_span = trace.begin("kernel.traverse", path="columnar") if trace is not None else None
        node_bounds = context.node_bounds
        result_heap: List[Tuple[float, str]] = []
        tie_breaker = itertools.count()
        candidate_heap: List[Tuple[float, int, int]] = []
        heapq.heappush(candidate_heap, (-1.0, next(tie_breaker), 0))
        child_start = compiled.child_start_list
        child_end = compiled.child_end_list
        entity_start = compiled.entity_start_list
        entity_end = compiled.entity_end_list
        entity_order = compiled.entity_order
        scores: Optional[List[float]] = None

        while candidate_heap:
            negative_bound, _tie, node_id = heapq.heappop(candidate_heap)
            bound = -negative_bound
            stats.nodes_visited += 1

            if len(result_heap) == k and result_heap[0][0] >= bound - approximation:
                stats.terminated_early = True
                break

            span_start = child_start[node_id]
            span_end = child_end[node_id]
            if node_id == 0 or span_end > span_start:
                if span_end > span_start:
                    stats.bound_computations += span_end - span_start
                    # The result heap cannot change while children are
                    # pushed, so the k-th best threshold is loop-invariant.
                    threshold = result_heap[0][0] if len(result_heap) == k else None
                    for child_id in range(span_start, span_end):
                        upper = node_bounds[child_id]
                        child_bound = upper if upper < bound else bound
                        if threshold is not None and threshold >= child_bound - approximation:
                            # The child can never beat the current k-th best
                            # (by more than the allowed approximation slack).
                            continue
                        heapq.heappush(
                            candidate_heap, (-child_bound, next(tie_breaker), child_id)
                        )
                continue

            # Leaf: candidate scores come from the lazily precomputed
            # whole-dataset vector (unless a custom fetcher overrides the
            # candidate sequences).
            stats.leaves_visited += 1
            if scores is None and not custom_fetch:
                if trace is None:
                    scores = context.entity_scores()
                else:
                    scores_span = trace.begin("kernel.scores")
                    scores = context.entity_scores()
                    scores_span.end(candidates=len(scores))
            for slot in range(entity_start[node_id], entity_end[node_id]):
                entity = entity_order[slot]
                if entity == query_entity:
                    continue
                if candidate_filter is not None and not candidate_filter(entity):
                    continue
                if custom_fetch:
                    score = self.measure.score(fetch(entity), query_sequence)
                else:
                    score = scores[slot]
                stats.entities_scored += 1
                if score <= 0.0:
                    continue
                entry = (score, _ReverseOrderStr(entity))
                if len(result_heap) < k:
                    heapq.heappush(result_heap, entry)
                elif entry > result_heap[0]:
                    heapq.heapreplace(result_heap, entry)

        if traverse_span is not None:
            traverse_span.end(**_pruning_attributes(stats))
        merge_span = trace.begin("kernel.merge") if trace is not None else None
        pairs = [(str(entity), score) for score, entity in result_heap]
        pairs.sort(key=lambda pair: (-pair[1], pair[0]))
        if merge_span is not None:
            merge_span.end(results=len(pairs))
        return TopKResult(query_entity=query_entity, items=pairs, stats=stats)

    # ------------------------------------------------------------------
    def search_many(
        self,
        query_entities: Sequence[str],
        k: int,
        sequence_fetcher: Optional[SequenceFetcher] = None,
        candidate_filter: Optional[Callable[[str], bool]] = None,
        approximation: float = 0.0,
    ) -> List[TopKResult]:
        """Answer one top-k query per entity in ``query_entities``.

        Every knob of :meth:`search` that shapes results is passed through
        (``candidate_filter`` and ``approximation`` included), so a batch is
        always equivalent to the corresponding serial single-query calls.
        A custom ``sequence_fetcher`` is memoised *across* the whole batch:
        a candidate visited by several queries is fetched once.
        """
        shared_cache: Optional[MutableMapping[str, CellSequence]] = (
            {} if sequence_fetcher is not None else None
        )
        return [
            self.search(
                entity,
                k,
                sequence_fetcher=sequence_fetcher,
                candidate_filter=candidate_filter,
                approximation=approximation,
                fetch_cache=shared_cache,
            )
            for entity in query_entities
        ]


@dataclass
class BatchTopKResult:
    """The outcome of one batch of top-k queries, plus aggregate statistics.

    ``results`` is aligned with the query order given to
    :meth:`BatchTopKExecutor.run`; the per-query :class:`QueryStats` live on
    each result, and this wrapper aggregates them into the batch-level
    numbers the CLI and benchmarks report.
    """

    results: List[TopKResult] = field(default_factory=list)
    #: Wall-clock seconds for the whole batch (including cache pre-warming).
    wall_seconds: float = 0.0
    #: Number of worker threads used (0 or 1 means serial execution).
    workers: int = 0
    #: Query cells newly hashed into the shared cache before searching.
    warmed_cells: int = 0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def num_queries(self) -> int:
        """Number of queries answered."""
        return len(self.results)

    @property
    def queries_per_second(self) -> float:
        """Batch throughput (0 when the batch finished too fast to time)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.num_queries / self.wall_seconds

    @property
    def total_entities_scored(self) -> int:
        """Exact scorings summed over the batch."""
        return sum(result.stats.entities_scored for result in self.results)

    @property
    def total_nodes_visited(self) -> int:
        """MinSigTree nodes popped summed over the batch."""
        return sum(result.stats.nodes_visited for result in self.results)

    @property
    def mean_pruning_effectiveness(self) -> float:
        """Average per-query pruning effectiveness (Figures 7.3/7.7 metric)."""
        if not self.results:
            return 0.0
        return sum(r.stats.pruning_effectiveness for r in self.results) / len(self.results)


class BatchTopKExecutor:
    """Answers many top-k queries over one index with shared work.

    Parameters
    ----------
    searcher:
        The :class:`TopKSearcher` bound to the index being queried.
    workers:
        Thread-pool size for query fan-out.  ``0`` or ``1`` runs serially in
        the calling thread; larger values use ``concurrent.futures``.
        Results are identical regardless -- each query's best-first search is
        independent, so fan-out only changes wall-clock time.

    Before searching, the executor hashes the union of every query entity's
    ST-cells into the family's shared cell cache via the vectorised bulk
    kernel (:meth:`HierarchicalHashFamily.warm_cache`), so cells shared
    between queries -- or between a query and earlier batches -- are never
    hashed twice.
    """

    def __init__(self, searcher: TopKSearcher, workers: int = 0) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.searcher = searcher
        self.workers = int(workers)

    def run(
        self,
        query_entities: Sequence[str],
        k: int,
        sequence_fetcher: Optional[SequenceFetcher] = None,
        approximation: float = 0.0,
        workers: Optional[int] = None,
        traces: Optional[Sequence[Optional[SpanContext]]] = None,
    ) -> BatchTopKResult:
        """Answer every query in ``query_entities``, preserving their order.

        ``traces``, when given, is aligned with ``query_entities``: each
        non-``None`` entry receives that query's kernel-stage spans.
        Tracing never changes results or execution order.
        """
        started = time.perf_counter()
        effective_workers = self.workers if workers is None else int(workers)

        dataset = self.searcher.dataset
        shared_cells = []
        for entity in query_entities:
            for level_cells in dataset.cell_sequence(entity).levels:
                shared_cells.extend(level_cells)
        warmed = self.searcher.hash_family.warm_cache(shared_cells)

        # One fetch memo for the whole batch: a candidate whose leaf several
        # queries visit is fetched once, not once per query.  Plain-dict
        # access is atomic under the GIL; a rare race only duplicates a
        # fetch, never corrupts a result.
        shared_fetch_cache: Optional[MutableMapping[str, CellSequence]] = (
            {} if sequence_fetcher is not None else None
        )

        if traces is None:

            def run_one(entity: str) -> TopKResult:
                return self.searcher.search(
                    entity,
                    k,
                    sequence_fetcher=sequence_fetcher,
                    approximation=approximation,
                    fetch_cache=shared_fetch_cache,
                )

            results = fan_out_queries(run_one, query_entities, effective_workers)
        else:
            # Fan out over indices so each search picks up its own trace
            # context; dispatch (serial vs pool) is unchanged.
            def run_indexed(position: int) -> TopKResult:
                return self.searcher.search(
                    query_entities[position],
                    k,
                    sequence_fetcher=sequence_fetcher,
                    approximation=approximation,
                    fetch_cache=shared_fetch_cache,
                    trace=traces[position],
                )

            results = fan_out_queries(
                run_indexed, range(len(query_entities)), effective_workers
            )

        return BatchTopKResult(
            results=results,
            wall_seconds=time.perf_counter() - started,
            workers=effective_workers,
            warmed_cells=warmed,
        )
