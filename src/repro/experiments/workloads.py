"""The SYN and WiFi workloads shared by the figure experiments.

The generator parameters below are the laptop-scale stand-ins for the paper's
datasets (see the substitution table in DESIGN.md): heavy-tailed per-entity
activity, power-law social groups, and -- for the WiFi workload -- clustered
hotspots with anchor-based detections.  Datasets are cached per process so
that a benchmark sweeping one knob does not regenerate the same data for
every point.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.experiments.harness import Scale, resolve_scale
from repro.mobility.hierarchical import HierarchicalMobilityConfig, generate_synthetic_dataset
from repro.mobility.im_model import IMModelParams
from repro.mobility.wifi import WiFiConfig, generate_wifi_dataset
from repro.traces.dataset import TraceDataset

__all__ = [
    "syn_config",
    "syn_workload",
    "wifi_config",
    "wifi_workload",
    "sample_queries",
    "clear_workload_cache",
]

_CACHE: Dict[Tuple, TraceDataset] = {}


def clear_workload_cache() -> None:
    """Drop every cached dataset (tests use this to bound memory)."""
    _CACHE.clear()


def syn_config(scale: Union[str, Scale, None] = None, **overrides: object) -> HierarchicalMobilityConfig:
    """The SYN generator configuration for a scale, with optional overrides."""
    resolved = resolve_scale(scale)
    config = HierarchicalMobilityConfig(
        num_entities=resolved.num_entities,
        horizon=resolved.horizon,
        grid_side=resolved.grid_side,
        num_levels=4,
        im_params=IMModelParams(),
        width_exponent=2.0,
        density_exponent=2.0,
        max_group_size=12,
        group_size_exponent=1.3,
        group_copy_probability=0.8,
        observation_rate_range=(0.05, 0.6),
        observation_rate_exponent=1.3,
        home_concentration=0.5,
        seed=11,
    )
    if overrides:
        config = config.with_params(**overrides)
    return config


def syn_workload(scale: Union[str, Scale, None] = None, **overrides: object) -> TraceDataset:
    """The SYN dataset for a scale (cached per parameterisation)."""
    config = syn_config(scale, **overrides)
    key = ("syn", config)
    if key not in _CACHE:
        dataset, _config = generate_synthetic_dataset(config)
        _CACHE[key] = dataset
    return _CACHE[key]


def wifi_config(scale: Union[str, Scale, None] = None, **overrides: object) -> WiFiConfig:
    """The WiFi generator configuration for a scale, with optional overrides."""
    resolved = resolve_scale(scale)
    config = WiFiConfig(
        num_devices=resolved.num_entities,
        num_hotspots=max(60, resolved.grid_side**2),
        horizon=resolved.horizon,
        # Keep per-device activity modest (sparse probe logs): pruning power
        # depends on n_h exceeding the typical per-entity cell count.
        mean_detections=15,
        max_dwell=3,
        anchors_per_device=4,
        anchor_probability=0.85,
        companion_fraction=0.3,
        companion_copy_probability=0.8,
        seed=13,
    )
    if overrides:
        config = config.with_params(**overrides)
    return config


def wifi_workload(scale: Union[str, Scale, None] = None, **overrides: object) -> TraceDataset:
    """The WiFi (REAL-substitute) dataset for a scale (cached)."""
    config = wifi_config(scale, **overrides)
    key = ("wifi", config)
    if key not in _CACHE:
        dataset, _config = generate_wifi_dataset(config)
        _CACHE[key] = dataset
    return _CACHE[key]


def sample_queries(
    dataset: TraceDataset,
    count: int,
    seed: int = 7,
    exclude: Optional[Sequence[str]] = None,
) -> list:
    """Sample query entities reproducibly from a dataset."""
    pool = [entity for entity in dataset.entities if not exclude or entity not in set(exclude)]
    if count >= len(pool):
        return list(pool)
    rng = random.Random(seed)
    return rng.sample(pool, count)
