"""One experiment generator per figure of the paper's Chapter 7.

Every function returns an :class:`~repro.experiments.harness.ExperimentResult`
whose rows are the data series of the corresponding figure; the benchmarks in
``benchmarks/`` call these functions and print the tables, and EXPERIMENTS.md
records the observed shapes next to the paper's.

All generators accept a ``scale`` ("tiny" / "small" / "medium" or a
:class:`~repro.experiments.harness.Scale`); the default follows the
``REPRO_SCALE`` environment variable and falls back to "small".
"""

from __future__ import annotations

import statistics
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.distribution import adm_histogram, ajpi_duration_histogram, ajpi_entity_counts
from repro.analysis.pe import measure_pruning_effectiveness
from repro.analysis.pruning_model import PruningModel, PruningModelParams
from repro.baselines.brute_force import BruteForceTopK
from repro.baselines.cluster_bitmap import ClusterBitmapIndex
from repro.core.engine import TraceQueryEngine
from repro.core.query import TopKSearcher
from repro.experiments.harness import ExperimentResult, Scale, resolve_scale
from repro.experiments.workloads import sample_queries, syn_workload, wifi_workload
from repro.measures.adm import HierarchicalADM
from repro.mobility.im_model import IMModelParams
from repro.storage.trace_store import DiskBackedTraceStore
from repro.traces.dataset import TraceDataset
from repro.traces.events import PresenceInstance

__all__ = [
    "figure_7_1",
    "figure_7_2",
    "figure_7_3",
    "figure_7_4",
    "figure_7_5",
    "figure_7_6",
    "figure_7_7",
    "figure_7_8",
    "figure_7_9",
    "ablation_bound_mode",
    "ablation_grouping",
    "ablation_pruned_sets",
]

ScaleLike = Union[str, Scale, None]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _datasets(scale: Scale) -> Dict[str, TraceDataset]:
    """The two evaluation datasets, keyed by the paper's names."""
    return {"SYN": syn_workload(scale), "REAL(wifi)": wifi_workload(scale)}


def _build_engine(
    dataset: TraceDataset,
    num_hashes: int,
    measure: Optional[HierarchicalADM] = None,
    **config: object,
) -> TraceQueryEngine:
    engine = TraceQueryEngine(dataset, measure=measure, num_hashes=num_hashes, seed=1, **config)
    return engine.build()


def _copy_dataset(dataset: TraceDataset) -> TraceDataset:
    """A deep-enough copy for mutation experiments (shares the hierarchy)."""
    clone = TraceDataset(dataset.hierarchy, horizon=dataset.horizon)
    for entity in dataset.entities:
        clone.extend(dataset.trace(entity))
    return clone


def _estimate_kth_degree(
    dataset: TraceDataset,
    measure: HierarchicalADM,
    queries: Sequence[str],
    k: int,
) -> float:
    """Mean k-th best association degree over the queries (the ``d_e`` of 6.3)."""
    oracle = BruteForceTopK(dataset, measure)
    values: List[float] = []
    for entity in queries:
        result = oracle.search(entity, k)
        if result.scores:
            values.append(result.scores[min(k, len(result.scores)) - 1])
    return statistics.mean(values) if values else 0.0


# ----------------------------------------------------------------------
# Figure 7.1 -- data distribution
# ----------------------------------------------------------------------
def figure_7_1(
    scale: ScaleLike = None,
    duration_buckets: Sequence[int] = (0, 25, 50, 75),
) -> ExperimentResult:
    """AjPI entity counts per level and AjPI duration histograms (Figure 7.1).

    For each dataset and sp-index level, the mean number of entities forming
    at least one AjPI with a query entity (series ``ajpi_counts``) and the
    mean number of entities falling in each total-duration bucket (series
    ``ajpi_duration``).
    """
    resolved = resolve_scale(scale)
    result = ExperimentResult(
        name="figure-7.1 data distribution",
        metadata={"scale": resolved.name, "duration_buckets": tuple(duration_buckets)},
    )
    for dataset_name, dataset in _datasets(resolved).items():
        queries = sample_queries(dataset, min(resolved.num_queries, 8))
        count_acc: Dict[int, List[int]] = {}
        duration_acc: Dict[Tuple[int, int], List[int]] = {}
        for query in queries:
            counts = ajpi_entity_counts(dataset, query)
            for level, count in counts.items():
                count_acc.setdefault(level, []).append(count)
            histogram = ajpi_duration_histogram(dataset, query, bucket_edges=duration_buckets)
            for level, buckets in histogram.items():
                for bucket_index, value in enumerate(buckets):
                    duration_acc.setdefault((level, bucket_index), []).append(value)
        for level in sorted(count_acc):
            result.add_row(
                series="ajpi_counts",
                dataset=dataset_name,
                level=level,
                entities=statistics.mean(count_acc[level]),
            )
        for (level, bucket_index), values in sorted(duration_acc.items()):
            result.add_row(
                series="ajpi_duration",
                dataset=dataset_name,
                level=level,
                duration_from=duration_buckets[bucket_index],
                entities=statistics.mean(values),
            )
    return result


# ----------------------------------------------------------------------
# Figure 7.2 -- association degree distribution
# ----------------------------------------------------------------------
def figure_7_2(
    scale: ScaleLike = None,
    parameter_pairs: Sequence[Tuple[float, float]] = ((2, 2), (2, 5), (5, 2), (5, 5)),
    bucket_width: float = 0.1,
) -> ExperimentResult:
    """Association degree histograms under different ADM parameters (Figure 7.2)."""
    resolved = resolve_scale(scale)
    result = ExperimentResult(
        name="figure-7.2 association degree distribution",
        metadata={"scale": resolved.name, "bucket_width": bucket_width},
    )
    for dataset_name, dataset in _datasets(resolved).items():
        queries = sample_queries(dataset, min(resolved.num_queries, 8))
        for u, v in parameter_pairs:
            measure = HierarchicalADM(num_levels=dataset.num_levels, u=u, v=v)
            accumulator: Dict[int, List[int]] = {}
            edges: List[float] = []
            for query in queries:
                edges, counts = adm_histogram(dataset, query, measure, bucket_width=bucket_width)
                for bucket_index, count in enumerate(counts):
                    accumulator.setdefault(bucket_index, []).append(count)
            for bucket_index in sorted(accumulator):
                result.add_row(
                    dataset=dataset_name,
                    u=u,
                    v=v,
                    degree_from=edges[bucket_index],
                    entities=statistics.mean(accumulator[bucket_index]),
                )
    return result


# ----------------------------------------------------------------------
# Figure 7.3 -- PE vs number of hash functions (measured vs predicted)
# ----------------------------------------------------------------------
def figure_7_3(scale: ScaleLike = None, k: int = 10) -> ExperimentResult:
    """Measured and model-predicted pruning effectiveness vs ``n_h`` (Figure 7.3)."""
    resolved = resolve_scale(scale)
    result = ExperimentResult(
        name="figure-7.3 PE vs number of hash functions",
        metadata={"scale": resolved.name, "k": k},
    )
    for dataset_name, dataset in _datasets(resolved).items():
        queries = sample_queries(dataset, resolved.num_queries)
        measure = HierarchicalADM(num_levels=dataset.num_levels)
        kth_degree = _estimate_kth_degree(dataset, measure, queries[:5], k)
        average_cells = max(1, int(round(dataset.average_cells_per_entity())))
        cells_distribution = tuple(
            len(dataset.cell_sequence(entity).base_cells) for entity in dataset.entities
        )
        # d_e -> n_c: for an entity matching the query on x of its C cells at
        # every level, the Equation 7.1 degree is approximately (x / C) ** v,
        # so the minimal shared-cell count is n_c ≈ C * d_e ** (1 / v).
        min_shared = max(1, int(round(average_cells * kth_degree ** (1.0 / measure.v))))
        for num_hashes in resolved.hash_sweep:
            engine = _build_engine(dataset, num_hashes, measure=measure)
            summary = measure_pruning_effectiveness(
                engine.top_k, queries, k=k, sample_size=resolved.num_queries
            )
            model = PruningModel(
                PruningModelParams(
                    universe_size=dataset.num_st_cells,
                    cells_per_entity=average_cells,
                    num_hashes=num_hashes,
                    min_shared_cells=min_shared,
                    cells_distribution=cells_distribution,
                )
            )
            result.add_row(
                dataset=dataset_name,
                num_hashes=num_hashes,
                measured_pe=summary.mean_pruning_effectiveness,
                predicted_pe=model.expected_pruning_effectiveness(),
                checked_fraction=summary.mean_checked_fraction,
            )
    return result


# ----------------------------------------------------------------------
# Figure 7.4 -- PE vs data characteristics
# ----------------------------------------------------------------------
_DEFAULT_SWEEPS: Dict[str, Tuple[float, ...]] = {
    "alpha": (0.3, 0.6, 1.0, 1.5, 2.0),
    "beta": (0.2, 0.4, 0.6, 0.8, 1.0),
    "rho": (0.2, 0.4, 0.6, 0.8, 1.0),
    "gamma": (0.1, 0.3, 0.5, 0.7, 0.9),
    "zeta": (0.4, 0.8, 1.2, 1.6, 2.0),
    "a": (1.0, 1.5, 2.0),
    "b": (1.0, 1.5, 2.0),
    "m": (3, 4, 5),
}


def figure_7_4(
    scale: ScaleLike = None,
    parameters: Optional[Iterable[str]] = None,
    sweeps: Optional[Dict[str, Tuple[float, ...]]] = None,
) -> ExperimentResult:
    """PE vs mobility-model and sp-index parameters on SYN data (Figure 7.4).

    One sub-figure per parameter (α, β, ρ, γ, ζ, a, b, m); every data point
    regenerates the SYN dataset with that single parameter changed and
    measures the checked fraction for Top-1/10/50 queries.
    """
    resolved = resolve_scale(scale)
    chosen = dict(_DEFAULT_SWEEPS if sweeps is None else sweeps)
    if parameters is not None:
        chosen = {name: chosen[name] for name in parameters}
    result = ExperimentResult(
        name="figure-7.4 PE vs data characteristics",
        metadata={"scale": resolved.name, "parameters": tuple(chosen)},
    )
    for parameter, values in chosen.items():
        for value in values:
            dataset = _syn_variant(resolved, parameter, value)
            engine = _build_engine(dataset, resolved.default_hashes)
            queries = sample_queries(dataset, resolved.num_queries)
            for k in resolved.k_values:
                summary = measure_pruning_effectiveness(engine.top_k, queries, k=k)
                result.add_row(
                    parameter=parameter,
                    value=value,
                    k=k,
                    checked_fraction=summary.mean_checked_fraction,
                    pe=summary.mean_pruning_effectiveness,
                )
    return result


def _syn_variant(scale: Scale, parameter: str, value: float) -> TraceDataset:
    """The SYN dataset with one hierarchical-IM parameter overridden."""
    im_fields = {"alpha", "beta", "gamma", "zeta", "rho"}
    if parameter in im_fields:
        params = IMModelParams(**{parameter: value})
        return syn_workload(scale, im_params=params)
    if parameter == "a":
        return syn_workload(scale, width_exponent=float(value))
    if parameter == "b":
        return syn_workload(scale, density_exponent=float(value))
    if parameter == "m":
        return syn_workload(scale, num_levels=int(value))
    raise ValueError(f"unknown figure-7.4 parameter {parameter!r}")


# ----------------------------------------------------------------------
# Figure 7.5 -- PE vs ADM parameters
# ----------------------------------------------------------------------
def figure_7_5(
    scale: ScaleLike = None,
    u_values: Sequence[float] = (2, 3, 4, 5),
    v_values: Sequence[float] = (2, 3, 4, 5),
    k: int = 10,
) -> ExperimentResult:
    """PE vs the ADM exponents ``u`` and ``v`` (Figure 7.5).

    The MinSigTree does not depend on the measure, so the index is built once
    per dataset and only the searcher's measure changes.
    """
    resolved = resolve_scale(scale)
    result = ExperimentResult(
        name="figure-7.5 PE vs ADM parameters",
        metadata={"scale": resolved.name, "k": k},
    )
    for dataset_name, dataset in _datasets(resolved).items():
        engine = _build_engine(dataset, resolved.default_hashes)
        queries = sample_queries(dataset, resolved.num_queries)
        for u in u_values:
            for v in v_values:
                measure = HierarchicalADM(num_levels=dataset.num_levels, u=u, v=v)
                searcher = TopKSearcher(
                    engine.tree, dataset, measure, engine.hash_family,
                    bound_mode=engine.config.bound_mode,
                )
                summary = measure_pruning_effectiveness(searcher.search, queries, k=k)
                result.add_row(
                    dataset=dataset_name,
                    u=u,
                    v=v,
                    checked_fraction=summary.mean_checked_fraction,
                    pe=summary.mean_pruning_effectiveness,
                )
    return result


# ----------------------------------------------------------------------
# Figure 7.6 -- search time vs memory size
# ----------------------------------------------------------------------
def figure_7_6(
    scale: ScaleLike = None,
    memory_fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
) -> ExperimentResult:
    """Simulated search time vs the fraction of data held in memory (Figure 7.6)."""
    resolved = resolve_scale(scale)
    result = ExperimentResult(
        name="figure-7.6 search time vs memory size",
        metadata={"scale": resolved.name},
    )
    for dataset_name, dataset in _datasets(resolved).items():
        engine = _build_engine(dataset, resolved.default_hashes)
        leaf_order = engine.tree.leaf_order()
        queries = sample_queries(dataset, min(resolved.num_queries, 10))
        for fraction in memory_fractions:
            store = DiskBackedTraceStore(dataset, leaf_order, memory_fraction=fraction)
            for k in resolved.k_values:
                store.reset_counters()
                store.clear_cache()
                for query in queries:
                    engine.top_k(query, k=k, sequence_fetcher=store.fetch_sequence)
                result.add_row(
                    dataset=dataset_name,
                    memory_fraction=fraction,
                    k=k,
                    simulated_ms=store.elapsed_ms / len(queries),
                    page_misses=store.page_misses,
                    page_hits=store.page_hits,
                )
    return result


# ----------------------------------------------------------------------
# Figure 7.7 -- PE vs result size, against the baseline
# ----------------------------------------------------------------------
def figure_7_7(
    scale: ScaleLike = None,
    k_values: Sequence[int] = (1, 10, 20, 30, 50, 70, 90),
) -> ExperimentResult:
    """PE vs result size ``k`` for two ``n_h`` settings and the bitmap baseline."""
    resolved = resolve_scale(scale)
    small_hashes = resolved.hash_sweep[len(resolved.hash_sweep) // 2]
    large_hashes = resolved.hash_sweep[-1]
    result = ExperimentResult(
        name="figure-7.7 PE vs result size",
        metadata={
            "scale": resolved.name,
            "small_hashes": small_hashes,
            "large_hashes": large_hashes,
        },
    )
    for dataset_name, dataset in _datasets(resolved).items():
        queries = sample_queries(dataset, resolved.num_queries)
        measure = HierarchicalADM(num_levels=dataset.num_levels)
        methods = {
            f"minsigtree-{small_hashes}": _build_engine(dataset, small_hashes, measure=measure).top_k,
            f"minsigtree-{large_hashes}": _build_engine(dataset, large_hashes, measure=measure).top_k,
            "cluster-bitmap": ClusterBitmapIndex(dataset, measure).build().search,
        }
        population = dataset.num_entities
        for method_name, search in methods.items():
            for k in k_values:
                if k >= population:
                    continue
                summary = measure_pruning_effectiveness(search, queries, k=k)
                result.add_row(
                    dataset=dataset_name,
                    method=method_name,
                    k=k,
                    pe=summary.mean_pruning_effectiveness,
                    checked_fraction=summary.mean_checked_fraction,
                )
    return result


# ----------------------------------------------------------------------
# Figure 7.8 -- indexing cost
# ----------------------------------------------------------------------
def figure_7_8(scale: ScaleLike = None) -> ExperimentResult:
    """Index construction time and index size vs ``n_h`` (Figure 7.8).

    ``indexing_seconds`` is the (default) vectorised bulk build;
    ``per_entity_seconds`` rebuilds the same index through the old
    per-entity signing path so the report shows the old-vs-new speedup.
    """
    resolved = resolve_scale(scale)
    result = ExperimentResult(
        name="figure-7.8 indexing cost",
        metadata={"scale": resolved.name},
    )
    for dataset_name, dataset in _datasets(resolved).items():
        # Materialise cell sequences and run one throwaway build up front:
        # the sweep should charge hashing and tree construction, not one-time
        # trace expansion or allocator warm-up (which would otherwise land
        # entirely on the first, smallest-n_h build).
        for entity in dataset.entities:
            dataset.cell_sequence(entity)
        _build_engine(dataset, resolved.hash_sweep[0])
        for num_hashes in resolved.hash_sweep:
            engine = _build_engine(dataset, num_hashes)
            per_entity_engine = _build_engine(dataset, num_hashes, bulk_signatures=False)
            result.add_row(
                dataset=dataset_name,
                num_hashes=num_hashes,
                indexing_seconds=engine.last_build_seconds,
                per_entity_seconds=per_entity_engine.last_build_seconds,
                bulk_speedup=per_entity_engine.last_build_seconds
                / max(engine.last_build_seconds, 1e-9),
                index_bytes=engine.index_size_bytes(),
                tree_nodes=engine.tree.num_nodes,
            )
    return result


# ----------------------------------------------------------------------
# Figure 7.9 -- update cost
# ----------------------------------------------------------------------
def figure_7_9(
    scale: ScaleLike = None,
    existing_fractions: Sequence[float] = (1.0, 0.7, 0.4),
    batch_fraction: float = 0.1,
) -> ExperimentResult:
    """Incremental update time vs ``n_h`` and the share of existing entities."""
    resolved = resolve_scale(scale)
    result = ExperimentResult(
        name="figure-7.9 update cost",
        metadata={"scale": resolved.name, "batch_fraction": batch_fraction},
    )
    base_dataset = syn_workload(resolved)
    batch_size = max(10, int(base_dataset.num_entities * batch_fraction))
    for num_hashes in resolved.hash_sweep:
        for existing_fraction in existing_fractions:
            dataset = _copy_dataset(base_dataset)
            engine = _build_engine(dataset, num_hashes)
            updates = _update_batch(dataset, batch_size, existing_fraction)
            started = time.perf_counter()
            engine.add_records(updates)
            elapsed = time.perf_counter() - started
            result.add_row(
                dataset="SYN",
                num_hashes=num_hashes,
                existing_fraction=existing_fraction,
                batch_size=batch_size,
                update_seconds=elapsed,
            )
    return result


def _update_batch(
    dataset: TraceDataset, batch_size: int, existing_fraction: float
) -> List[PresenceInstance]:
    """New presence records for a mix of existing and brand-new entities."""
    base_units = dataset.hierarchy.base_units
    horizon = max(dataset.horizon, 2)
    existing_count = int(round(batch_size * existing_fraction))
    entities = list(dataset.entities[:existing_count])
    entities += [f"new-entity-{index}" for index in range(batch_size - existing_count)]
    records: List[PresenceInstance] = []
    for index, entity in enumerate(entities):
        unit = base_units[(index * 7) % len(base_units)]
        start = (index * 13) % (horizon - 1)
        records.append(PresenceInstance(entity=entity, unit=unit, start=start, end=start + 1))
    return records


# ----------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ----------------------------------------------------------------------
def ablation_pruned_sets(scale: ScaleLike = None, k: int = 10) -> ExperimentResult:
    """Partial pruned sets (routing value only) vs full group-level signatures."""
    resolved = resolve_scale(scale)
    dataset = syn_workload(resolved)
    queries = sample_queries(dataset, resolved.num_queries)
    result = ExperimentResult(
        name="ablation: partial vs full pruned sets",
        metadata={"scale": resolved.name, "k": k},
    )
    engine = _build_engine(
        dataset, resolved.default_hashes, store_full_signatures=True
    )
    for mode, use_full in (("partial", False), ("full", True)):
        searcher = TopKSearcher(
            engine.tree, dataset, engine.measure, engine.hash_family,
            use_full_signatures=use_full, bound_mode=engine.config.bound_mode,
        )
        summary = measure_pruning_effectiveness(searcher.search, queries, k=k)
        result.add_row(
            mode=mode,
            pe=summary.mean_pruning_effectiveness,
            checked_fraction=summary.mean_checked_fraction,
            index_bytes_full=engine.index_size_bytes(),
        )
    return result


def ablation_grouping(scale: ScaleLike = None, k: int = 10) -> ExperimentResult:
    """The paper's arg-max routing vs random routing of entities to children."""
    from repro.core.minsigtree import MinSigTree
    from repro.core.signatures import SignatureComputer

    resolved = resolve_scale(scale)
    dataset = syn_workload(resolved)
    queries = sample_queries(dataset, resolved.num_queries)
    result = ExperimentResult(
        name="ablation: arg-max vs random routing",
        metadata={"scale": resolved.name, "k": k},
    )
    engine = _build_engine(dataset, resolved.default_hashes)
    computer = SignatureComputer(engine.hash_family)
    signatures = computer.signatures_for_dataset(dataset)
    for strategy in ("argmax", "random"):
        tree = MinSigTree.build(
            signatures,
            num_levels=dataset.num_levels,
            num_hashes=resolved.default_hashes,
            routing_strategy=strategy,
        )
        searcher = TopKSearcher(tree, dataset, engine.measure, engine.hash_family)
        summary = measure_pruning_effectiveness(searcher.search, queries, k=k)
        result.add_row(
            routing=strategy,
            pe=summary.mean_pruning_effectiveness,
            checked_fraction=summary.mean_checked_fraction,
            tree_nodes=tree.num_nodes,
        )
    return result


def ablation_bound_mode(scale: ScaleLike = None, k: int = 10) -> ExperimentResult:
    """The paper's lifted Theorem 4 bound vs the strictly admissible per-level bound."""
    resolved = resolve_scale(scale)
    dataset = syn_workload(resolved)
    queries = sample_queries(dataset, min(resolved.num_queries, 10))
    result = ExperimentResult(
        name="ablation: bound mode (lift vs per-level)",
        metadata={"scale": resolved.name, "k": k},
    )
    measure = HierarchicalADM(num_levels=dataset.num_levels)
    oracle = BruteForceTopK(dataset, measure)
    truth = {query: set(oracle.search(query, k).entities) for query in queries}
    for mode in ("lift", "per_level"):
        engine = _build_engine(dataset, resolved.default_hashes, measure=measure, bound_mode=mode)
        summary = measure_pruning_effectiveness(engine.top_k, queries, k=k)
        recalls = []
        for query in queries:
            found = set(engine.top_k(query, k).entities)
            expected = truth[query]
            recalls.append(len(found & expected) / len(expected) if expected else 1.0)
        result.add_row(
            bound_mode=mode,
            pe=summary.mean_pruning_effectiveness,
            checked_fraction=summary.mean_checked_fraction,
            mean_recall=statistics.mean(recalls),
        )
    return result
