"""The evaluation harness: one experiment generator per figure of Chapter 7.

* :mod:`~repro.experiments.harness` -- experiment results, table rendering,
  CSV export and the scale presets (``tiny`` / ``small`` / ``medium``).
* :mod:`~repro.experiments.workloads` -- the SYN and WiFi workload
  configurations shared by the figures, with per-process caching.
* :mod:`~repro.experiments.figures` -- ``figure_7_1`` … ``figure_7_9`` and
  the ablation studies; each returns an
  :class:`~repro.experiments.harness.ExperimentResult` whose rows are what
  the corresponding benchmark prints.
"""

from repro.experiments.harness import ExperimentResult, Scale, resolve_scale
from repro.experiments.workloads import syn_workload, wifi_workload
from repro.experiments import figures

__all__ = [
    "ExperimentResult",
    "Scale",
    "figures",
    "resolve_scale",
    "syn_workload",
    "wifi_workload",
]
