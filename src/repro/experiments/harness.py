"""Experiment plumbing: results, tables, CSV export, and scale presets.

Every figure generator returns an :class:`ExperimentResult` -- a named list
of flat row dictionaries plus free-form metadata.  The benchmarks print the
rendered table (the reproduction of the figure's data series) and the tests
only assert structural properties of the rows, so the two never disagree
about what an experiment produces.

Scales
------
The paper's experiments run on 100 M synthetic entities and 30 M real
devices; the reproduction exposes three laptop-scale presets and reads the
``REPRO_SCALE`` environment variable so benchmark runs can be grown without
touching code:

========  ==========  ========  ==========================
scale     entities    queries   hash-function sweep
========  ==========  ========  ==========================
tiny      120         5         16, 32, 64
small     400         12        64, 128, 256, 512
medium    1200        20        128, 256, 512, 1024, 2048
========  ==========  ========  ==========================
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = ["Scale", "ExperimentResult", "resolve_scale", "SCALES"]


@dataclass(frozen=True)
class Scale:
    """A scale preset for the experiment workloads."""

    name: str
    #: Number of entities in the generated datasets.
    num_entities: int
    #: Number of query entities sampled per measurement point.
    num_queries: int
    #: Hash-function sweep used by the nh-sensitive figures.
    hash_sweep: Tuple[int, ...]
    #: Default number of hash functions for figures that fix nh.
    default_hashes: int
    #: Simulation horizon in base temporal units (hours).
    horizon: int
    #: Grid side for the SYN workload.
    grid_side: int
    #: Result sizes evaluated by the k-sensitive figures.
    k_values: Tuple[int, ...] = (1, 10, 50)


SCALES: Dict[str, Scale] = {
    "tiny": Scale(
        name="tiny",
        num_entities=120,
        num_queries=5,
        hash_sweep=(16, 32, 64),
        default_hashes=64,
        horizon=72,
        grid_side=8,
        k_values=(1, 5, 10),
    ),
    "small": Scale(
        name="small",
        num_entities=400,
        num_queries=12,
        hash_sweep=(64, 128, 256, 512),
        default_hashes=256,
        horizon=120,
        grid_side=12,
        k_values=(1, 10, 50),
    ),
    "medium": Scale(
        name="medium",
        num_entities=1200,
        num_queries=20,
        hash_sweep=(128, 256, 512, 1024, 2048),
        default_hashes=512,
        horizon=24 * 7,
        grid_side=16,
        k_values=(1, 10, 50),
    ),
}


def resolve_scale(scale: Union[str, Scale, None] = None) -> Scale:
    """Resolve a scale argument (or the ``REPRO_SCALE`` environment variable)."""
    if isinstance(scale, Scale):
        return scale
    if scale is None:
        scale = os.environ.get("REPRO_SCALE", "small")
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        ) from None


@dataclass
class ExperimentResult:
    """The data series behind one figure."""

    name: str
    #: One flat dictionary per data point.
    rows: List[Dict[str, object]] = field(default_factory=list)
    #: Free-form metadata (scale, parameters, notes).
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        """Append one data point."""
        self.rows.append(dict(values))

    def columns(self) -> List[str]:
        """Union of row keys, in first-seen order."""
        seen: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        return seen

    def column(self, name: str) -> List[object]:
        """All values of one column (missing entries become ``None``)."""
        return [row.get(name) for row in self.rows]

    def filter(self, **criteria: object) -> "ExperimentResult":
        """Rows matching all the given column values, as a new result."""
        matching = [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]
        return ExperimentResult(name=self.name, rows=matching, metadata=dict(self.metadata))

    def series(self, x: str, y: str, **criteria: object) -> List[Tuple[object, object]]:
        """``(x, y)`` pairs of the rows matching ``criteria`` (figure series)."""
        return [(row.get(x), row.get(y)) for row in self.filter(**criteria).rows]

    # ------------------------------------------------------------------
    def to_table(self, max_rows: Optional[int] = None) -> str:
        """Render the rows as an aligned text table (what the benches print)."""
        columns = self.columns()
        if not columns:
            return f"{self.name}: (no rows)"
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        rendered: List[List[str]] = [[_format_value(row.get(col)) for col in columns] for row in rows]
        widths = [
            max(len(col), *(len(line[index]) for line in rendered)) if rendered else len(col)
            for index, col in enumerate(columns)
        ]
        header = "  ".join(col.ljust(width) for col, width in zip(columns, widths))
        separator = "  ".join("-" * width for width in widths)
        body = [
            "  ".join(value.ljust(width) for value, width in zip(line, widths))
            for line in rendered
        ]
        title = f"== {self.name} =="
        omitted = "" if max_rows is None or len(self.rows) <= max_rows else f"\n... ({len(self.rows) - max_rows} more rows)"
        return "\n".join([title, header, separator, *body]) + omitted

    def save_csv(self, path: str) -> None:
        """Write the rows to a CSV file."""
        columns = self.columns()
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            for row in self.rows:
                writer.writerow({key: row.get(key, "") for key in columns})

    def save_json(self, path: str) -> None:
        """Write the standard JSON results document.

        The layout -- ``{"name", "metadata", "rows"}`` with one flat object
        per data point -- is the machine-readable mirror of
        :meth:`to_table`, used by the benchmarks that assert numeric
        acceptance thresholds (e.g. ``bench_snapshot_vs_rebuild``).
        """
        document = {"name": self.name, "metadata": self.metadata, "rows": self.rows}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def __len__(self) -> int:
        return len(self.rows)


def _format_value(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
