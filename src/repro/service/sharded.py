"""Sharded serving: one logical engine over N entity partitions.

:class:`ShardedEngine` partitions the entities of a dataset across ``N``
independent :class:`~repro.core.engine.TraceQueryEngine` shards (hash or
round-robin partitioning), builds the shards in parallel through the bulk
signature pipeline, and serves queries by fanning out over every shard and
merging a global top-k.

Correctness rests on two facts:

* every shard's hash family is constructed with the *same* seed, hash count,
  and horizon as a single engine over the whole dataset would be, so each
  entity's signature matrix is bitwise-identical to the unsharded build; and
* an exact per-shard top-k over a partition of the candidates, merged and
  truncated to ``k``, equals the exact global top-k.

The second fact is a theorem whenever the search bound is admissible, i.e.
under ``bound_mode="per_level"`` -- there, sharded results are *guaranteed*
equal to the single engine's for every shard count (pinned by the fuzz test
in ``tests/test_sharded.py``).  Under the default ``"lift"`` bound (the
paper's Theorem 4 construction, not strictly admissible in a coarse-level
corner case -- see the bound-mode ablation) the single engine itself can
occasionally prune a true associate; shard-local trees prune differently,
so a sharded deployment may *recover* associations the unsharded search
missed.  Sharding never degrades accuracy below the single engine's
envelope -- divergence only occurs where the lift bound was already
approximate.

Updates (``add_records`` / ``remove_entity`` / ``refresh_entities`` /
``expire_events``) are routed to the owning shard; new entities are placed
by the partitioner and the assignment is remembered, so re-introducing a
removed entity lands it on whatever shard the partitioner picks next
(deterministically).  A sharded deployment snapshots to a directory of
per-shard engine snapshots plus a routing manifest -- see
:meth:`ShardedEngine.save`.

**Caching under streaming updates.**  The result cache stores *per-shard
partial* top-k lists keyed ``(shard, query entity, k, approximation,
config fingerprint)`` rather than merged results; a merged answer is
reassembled from its partials on every hit (the merge is a sort of ``N * k``
pairs -- negligible next to a search).  A cached partial can only go stale
in two ways: its shard's index or data changed, or its *query entity's*
trace changed (the query sequence is fetched from the routing dataset).
Streamed updates therefore invalidate exactly the entries whose shard was
touched or whose query entity was updated -- the rest of a warm cache
survives, which is what keeps cache hit rates useful under continuous
ingestion.  ``build``/``load``/``compact`` still clear wholesale.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.engine import EngineConfig, ExpiryReport, TraceQueryEngine
from repro.core.query import BatchTopKResult, TopKResult, fan_out_queries
from repro.measures.adm import HierarchicalADM
from repro.measures.base import AssociationMeasure
from repro.obs.trace import SpanContext
from repro.service.cache import QueryResultCache
from repro.service.merge import merge_topk_results
from repro.service.partition import Partitioner, RoundRobinPartitioner, make_partitioner
from repro.storage.snapshot import (
    SHARDED_SNAPSHOT_FORMAT,
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    _MANIFEST_NAME,
    _measure_payload,
    load_engine_snapshot,
    read_manifest,
    save_engine_snapshot,
    snapshot_staging,
)
from repro.traces.dataset import TraceDataset
from repro.traces.events import PresenceInstance

__all__ = ["SHARDED_SNAPSHOT_FORMAT", "ShardedEngine"]

PathLike = Union[str, Path]



class ShardedEngine:
    """Top-k serving over entity shards with a single-engine-equivalent API.

    Parameters
    ----------
    dataset:
        The full dataset.  It stays the routing/query substrate (query
        sequences and membership checks); per-shard copies hold only each
        shard's entities.
    measure:
        Association measure shared by every shard (defaults to the paper's
        :class:`HierarchicalADM`).
    config:
        Engine knobs, applied to every shard.  ``query_cache_size`` applies
        to the *sharded* engine's own result cache (shards run uncached --
        caching twice would only burn memory); ``batch_workers`` sets the
        default fan-out of :meth:`top_k_batch`.
    num_shards:
        Number of entity partitions.
    partitioner:
        ``"hash"`` (default), ``"round_robin"``, ``"consistent_hash"``, or
        a :class:`~repro.service.partition.Partitioner` instance.

    Invariants
    ----------
    * Every shard's hash family is constructed exactly as an unsharded
      engine's would be, so per-entity signatures are bitwise-identical to
      the single-engine build for every shard count.
    * Updates route to the owning shard; the routing dataset and the shard
      datasets never disagree about an entity's trace.
    * Under ``bound_mode="per_level"`` the merged top-k equals the single
      engine's for every shard count (see the module docstring for the
      ``lift`` caveat).

    Example
    -------
    >>> from repro import ShardedEngine, SpatialHierarchy, TraceDataset
    >>> hierarchy = SpatialHierarchy.regular([2, 2])
    >>> dataset = TraceDataset(hierarchy, horizon=24)
    >>> dataset.add_record("a", "u2_0_0", time=2, duration=3)
    >>> dataset.add_record("b", "u2_0_0", time=2, duration=3)
    >>> dataset.add_record("c", "u2_1_1", time=9, duration=1)
    >>> fleet = ShardedEngine(dataset, num_shards=2, num_hashes=16, seed=1).build()
    >>> fleet.top_k("a", k=1).entities       # fan out over both shards, merge
    ['b']
    >>> fleet.shard_of("a") in (0, 1)
    True
    """

    def __init__(
        self,
        dataset: TraceDataset,
        measure: Optional[AssociationMeasure] = None,
        config: Optional[EngineConfig] = None,
        num_shards: int = 2,
        partitioner: Union[str, Partitioner] = "hash",
        **overrides: object,
    ) -> None:
        if config is None:
            config = EngineConfig()
        if overrides:
            config = config.with_overrides(**overrides)
        self.dataset = dataset
        self.config = config
        self.measure = measure or HierarchicalADM(num_levels=dataset.num_levels)
        self.partitioner = make_partitioner(partitioner, num_shards)
        self._shard_of: Dict[str, int] = {}
        self._shards: List[TraceQueryEngine] = []
        self._config_fingerprint = config.fingerprint()
        self._query_cache: Optional[QueryResultCache] = None
        if config.query_cache_size > 0:
            self._query_cache = QueryResultCache(config.query_cache_size)
        #: Wall-clock seconds spent in the last :meth:`build` call.
        self.last_build_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of entity partitions."""
        return self.partitioner.num_shards

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` (or :meth:`load`) has produced the shards."""
        return bool(self._shards)

    @property
    def shards(self) -> Tuple[TraceQueryEngine, ...]:
        """The per-shard engines (available after :meth:`build`)."""
        self._require_built()
        return tuple(self._shards)

    @property
    def query_cache(self) -> Optional[QueryResultCache]:
        """The sharded engine's LRU result cache, or ``None`` when disabled."""
        return self._query_cache

    def configure_query_cache(self, size: int) -> None:
        """Enable, resize, or disable (``size=0``) the partial-result cache.

        Mirrors :meth:`TraceQueryEngine.configure_query_cache`; the sharded
        cache stores per-shard partials, so resizing starts it empty and
        the next queries re-warm it shard by shard.
        """
        if size < 0:
            raise ValueError(f"query cache size must be >= 0, got {size}")
        self.config = self.config.with_overrides(query_cache_size=size)
        self._query_cache = QueryResultCache(size) if size > 0 else None

    def configure_columnar(self, enabled: bool) -> None:
        """Switch every shard between the columnar kernel and the reference path.

        Mirrors :meth:`TraceQueryEngine.configure_columnar`; per-shard
        results are identical either way, so cached partials stay valid and
        the cache is left untouched.
        """
        self.config = self.config.with_overrides(columnar_queries=bool(enabled))
        for shard in self._shards:
            shard.configure_columnar(enabled)

    @property
    def num_entities(self) -> int:
        """Number of entities across all shards."""
        return self.dataset.num_entities

    def shard_of(self, entity: str) -> int:
        """The shard currently owning ``entity``."""
        try:
            return self._shard_of[entity]
        except KeyError:
            raise KeyError(f"entity {entity!r} is not assigned to any shard") from None

    def index_size_bytes(self) -> int:
        """Approximate summed MinSigTree size across shards."""
        self._require_built()
        return sum(shard.index_size_bytes() for shard in self._shards)

    def runtime_stats(self) -> Dict[str, object]:
        """Operational counters for serving dashboards (``/v1/stats``).

        The sharded counterpart of
        :meth:`~repro.core.engine.TraceQueryEngine.runtime_stats`: per-shard
        entity counts, the summed loose-operation counter (retraction
        looseness across every shard's tree), and the deployment-level
        cache snapshot (shards run uncached by construction).
        """
        built = self.is_built
        stats: Dict[str, object] = {
            "kind": "sharded",
            "built": built,
            "entities": self.dataset.num_entities,
            "presences": self.dataset.num_presences,
            "num_shards": self.num_shards,
            "partitioner": self.partitioner.kind,
            "shard_sizes": (
                [shard.dataset.num_entities for shard in self._shards] if built else []
            ),
            "loose_operations": (
                sum(shard.tree.loose_operations for shard in self._shards) if built else 0
            ),
            "index_size_bytes": self.index_size_bytes() if built else 0,
            "columnar_queries": self.config.columnar_queries,
        }
        cache = self._query_cache
        stats["cache"] = cache.stats_snapshot() if cache is not None else None
        return stats

    def _require_built(self) -> None:
        if not self._shards:
            raise RuntimeError("the sharded index has not been built yet; call build() first")

    def _assign(self, entity: str) -> int:
        shard = self._shard_of.get(entity)
        if shard is None:
            shard = self.partitioner.assign(entity)
            self._shard_of[entity] = shard
        return shard

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------
    def build(self, workers: Optional[int] = None) -> "ShardedEngine":
        """Partition the dataset and build every shard's index.

        Shards build concurrently on a thread pool (``workers`` defaults to
        one thread per shard, capped at the CPU count); each shard routes its
        signatures through the bulk pipeline exactly like a single engine.
        Every shard dataset is pinned to the full dataset's horizon so all
        hash families -- and therefore all signatures -- are identical to an
        unsharded build.
        """
        started = time.perf_counter()
        horizon = max(self.dataset.horizon, 1)
        hierarchy = self.dataset.hierarchy
        shard_datasets = [
            TraceDataset(hierarchy, horizon=horizon) for _ in range(self.num_shards)
        ]
        for entity in self.dataset.entities:
            shard_datasets[self._assign(entity)].restore_trace(
                entity, self.dataset.trace(entity)
            )
        shard_config = self.config.with_overrides(query_cache_size=0, batch_workers=0)
        self._shards = [
            TraceQueryEngine(shard_dataset, measure=self.measure, config=shard_config)
            for shard_dataset in shard_datasets
        ]
        if workers is None:
            workers = min(self.num_shards, os.cpu_count() or 1)
        if workers <= 1 or self.num_shards == 1:
            for shard in self._shards:
                shard.build()
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                list(pool.map(lambda shard: shard.build(), self._shards))
        self._share_hash_family()
        self.last_build_seconds = time.perf_counter() - started
        self._invalidate_query_cache()
        return self

    def _share_hash_family(self) -> None:
        """Point every shard at one hash family (and one cell cache).

        All shard families are constructed identically (same seed, hash
        count, horizon, hierarchy), so sharing the first shard's instance is
        purely an optimisation: query cells are hashed once instead of once
        per shard, and the cell cache is stored once instead of N times.
        """
        if len(self._shards) <= 1:
            return
        shared = self._shards[0].hash_family
        for shard in self._shards[1:]:
            shard._adopt_index(shared, shard.tree)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def top_k(
        self,
        query_entity: str,
        k: int = 10,
        approximation: float = 0.0,
        trace: Optional[SpanContext] = None,
    ) -> TopKResult:
        """Global top-k: fan out over every shard and merge.

        Results (and orderings) match a single engine over the same dataset
        whenever the bound is admissible (``bound_mode="per_level"``); under
        the default ``"lift"`` bound they match wherever the single engine's
        pruning was itself exact (see the module docstring).  The merged
        :class:`QueryStats` aggregate the per-shard counters (populations
        and work counters sum, early termination is "any").

        With ``query_cache_size > 0`` the *per-shard partial* results are
        cached, so one ``top_k`` call costs up to ``num_shards`` cache
        lookups -- and a streamed update to one shard leaves the other
        shards' cached partials servable (see the module docstring).

        ``trace`` attaches per-shard ``shard.search`` spans (each nesting
        the kernel-stage spans) and a ``kernel.merge`` span; it never
        changes results.
        """
        self._require_built()
        return self._search_shards(query_entity, k, approximation, trace)

    def _partial_cache_key(
        self, shard_id: int, query_entity: str, k: int, approximation: float
    ) -> tuple:
        """Cache key of one shard's partial top-k.

        The shard id leads so selective invalidation can match on it;
        the query entity follows for the same reason.
        """
        return (shard_id, query_entity, k, approximation, self._config_fingerprint)

    def _search_shards(
        self,
        query_entity: str,
        k: int,
        approximation: float,
        trace: Optional[SpanContext] = None,
    ) -> TopKResult:
        """Fan one query out over every shard (cache-aware) and merge."""
        query_sequence = self.dataset.cell_sequence(query_entity)
        cache = self._query_cache
        shard_results = []
        for shard_id, shard in enumerate(self._shards):
            shard_span = (
                trace.begin("shard.search", shard=shard_id) if trace is not None else None
            )

            def compute(
                shard: TraceQueryEngine = shard,
                shard_trace: Optional[SpanContext] = (
                    trace.under(shard_span) if shard_span is not None else None
                ),
            ) -> TopKResult:
                return shard.searcher.search(
                    query_entity,
                    k,
                    approximation=approximation,
                    query_sequence=query_sequence,
                    trace=shard_trace,
                )

            if cache is None:
                shard_results.append(compute())
                if shard_span is not None:
                    shard_span.end()
            elif trace is None:
                shard_results.append(
                    cache.fetch_or_compute(
                        self._partial_cache_key(shard_id, query_entity, k, approximation),
                        compute,
                    )
                )
            else:
                # Same get -> compute -> put(copy) protocol as
                # fetch_or_compute, unrolled to record the cache outcome.
                key = self._partial_cache_key(shard_id, query_entity, k, approximation)
                partial = cache.get(key)
                if partial is None:
                    partial = compute()
                    cache.put(key, partial.copy())
                    shard_span.end(cache_hit=False)
                else:
                    shard_span.end(cache_hit=True)
                shard_results.append(partial)
        merge_span = trace.begin("kernel.merge") if trace is not None else None
        merged = self._merge_results(query_entity, shard_results, k)
        if merge_span is not None:
            merge_span.end(shards=len(shard_results), results=len(merged.items))
        return merged

    @staticmethod
    def _merge_results(
        query_entity: str, shard_results: Sequence[TopKResult], k: int
    ) -> TopKResult:
        """Merge exact per-shard top-k lists into the global top-k.

        Delegates to :func:`repro.service.merge.merge_topk_results` -- the
        single merge/tie-break shared with the cluster coordinator, so
        in-process and multi-node deployments rank identically.
        """
        return merge_topk_results(query_entity, shard_results, k)

    def top_k_many(
        self, query_entities: Sequence[str], k: int = 10, workers: Optional[int] = None
    ) -> List[TopKResult]:
        """One merged top-k result per query entity (order preserved)."""
        return self.top_k_batch(query_entities, k, workers=workers).results

    def top_k_batch(
        self,
        query_entities: Sequence[str],
        k: int = 10,
        workers: Optional[int] = None,
        approximation: float = 0.0,
        traces: Optional[Sequence[Optional[SpanContext]]] = None,
    ) -> BatchTopKResult:
        """Answer a batch of queries, fanning queries out over a thread pool.

        The union of every query's ST-cells is pre-hashed into each shard's
        cell cache (one bulk kernel call per shard), then queries run
        concurrently when ``workers`` (or the config's ``batch_workers``)
        exceeds 1.  Results are identical to serial :meth:`top_k` calls.
        ``traces`` is aligned with ``query_entities``, as in the single
        engine's batch API.
        """
        self._require_built()
        started = time.perf_counter()
        effective_workers = self.config.batch_workers if workers is None else int(workers)

        shared_cells = []
        for entity in query_entities:
            for level_cells in self.dataset.cell_sequence(entity).levels:
                shared_cells.extend(level_cells)
        # The shards share one hash family (see _share_hash_family), so one
        # warm-up primes the cell cache for every shard's searches.
        warmed = self._shards[0].hash_family.warm_cache(shared_cells)

        if traces is None:

            def run_one(entity: str) -> TopKResult:
                return self.top_k(entity, k, approximation=approximation)

            results = fan_out_queries(run_one, query_entities, effective_workers)
        else:

            def run_indexed(position: int) -> TopKResult:
                return self.top_k(
                    query_entities[position],
                    k,
                    approximation=approximation,
                    trace=traces[position],
                )

            results = fan_out_queries(
                run_indexed, range(len(query_entities)), effective_workers
            )

        return BatchTopKResult(
            results=results,
            wall_seconds=time.perf_counter() - started,
            workers=effective_workers,
            warmed_cells=warmed,
        )

    # ------------------------------------------------------------------
    # Incremental maintenance (routed to the owning shard)
    # ------------------------------------------------------------------
    def add_records(self, presences: Iterable[PresenceInstance]) -> List[str]:
        """Append records, routing each entity's batch to its owning shard.

        New entities are assigned by the partitioner; existing ones go to
        their recorded shard.  Returns the affected entities in first-seen
        order, exactly like the single-engine API.  Only the cache entries
        of the touched shards (or of queries about the updated entities)
        are invalidated.
        """
        self._require_built()
        affected: Dict[str, None] = {}
        per_shard: Dict[int, List[PresenceInstance]] = {}
        for presence in presences:
            self.dataset.add_presence(presence)
            affected[presence.entity] = None
            per_shard.setdefault(self._assign(presence.entity), []).append(presence)
        for shard_id, batch in per_shard.items():
            self._shards[shard_id].add_records(batch)
        self._invalidate_after_update(affected, per_shard)
        return list(affected)

    def refresh_entities(self, entities: Iterable[str]) -> None:
        """Re-sign entities whose traces changed out of band, shard by shard.

        The router dataset is the source of truth: each owning shard's copy
        of the entity's trace is replaced before re-signing.
        """
        self._require_built()
        per_shard: Dict[int, List[str]] = {}
        for entity in entities:
            per_shard.setdefault(self.shard_of(entity), []).append(entity)
        for shard_id, shard_entities in per_shard.items():
            shard = self._shards[shard_id]
            for entity in shard_entities:
                shard.dataset.replace_trace(entity, self.dataset.trace(entity))
            shard.refresh_entities(shard_entities)
        refreshed = [entity for group in per_shard.values() for entity in group]
        self._invalidate_after_update(refreshed, per_shard)

    def remove_entity(self, entity: str) -> None:
        """Drop an entity from its shard and from the routing dataset."""
        self._require_built()
        shard_id = self._shard_of.get(entity)
        if shard_id is None or entity not in self.dataset:
            raise KeyError(f"unknown entity {entity!r}")
        self._shards[shard_id].remove_entity(entity)
        del self._shard_of[entity]
        self.dataset.remove_entity(entity)
        self._invalidate_after_update([entity], [shard_id])

    # ------------------------------------------------------------------
    # Streaming maintenance: windowed expiry and compaction
    # ------------------------------------------------------------------
    def expire_events(self, cutoff: int) -> ExpiryReport:
        """Expire ``end <= cutoff`` records from every shard and the router.

        Each shard retracts its own copy incrementally (see
        :meth:`TraceQueryEngine.expire_events`); the routing dataset and
        table are kept in lockstep, and only the cache entries of shards
        that actually changed -- or of queries about affected entities --
        are invalidated.  Returns the aggregated :class:`ExpiryReport`.
        """
        self._require_built()
        self.dataset.expire_before(cutoff)
        report = ExpiryReport(cutoff=cutoff)
        touched_shards: List[int] = []
        for shard_id, shard in enumerate(self._shards):
            shard_report = shard.expire_events(cutoff)
            if shard_report.affected_entities:
                touched_shards.append(shard_id)
            report.absorb(shard_report)
        for entity in report.removed_entities:
            self._shard_of.pop(entity, None)
        if report.affected_entities:
            self._invalidate_after_update(report.affected_entities, touched_shards)
        return report

    def compact(self) -> "ShardedEngine":
        """Re-tighten every shard's tree (zero hash evaluations; full clear).

        See :meth:`TraceQueryEngine.compact`.  Compaction touches every
        shard, so the cache is cleared wholesale.
        """
        self._require_built()
        for shard in self._shards:
            shard.compact()
        self._invalidate_query_cache()
        return self

    def _invalidate_after_update(
        self, entities: Iterable[str], shard_ids: Iterable[int]
    ) -> None:
        """Drop exactly the cache entries an update could have made stale.

        A cached partial ``(shard, query entity, ...)`` changes only if that
        shard's index/data changed or the query entity's own trace changed
        (its query sequence comes from the routing dataset) -- so those two
        conditions are the whole invalidation rule.
        """
        if self._query_cache is None:
            return
        affected = set(entities)
        shards = set(shard_ids)
        self._query_cache.invalidate_where(
            lambda key: key[0] in shards or key[1] in affected
        )

    def _invalidate_query_cache(self) -> None:
        if self._query_cache is not None:
            self._query_cache.clear()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike, extra_meta: Optional[Dict[str, object]] = None) -> Path:
        """Write per-shard snapshots plus a routing manifest; returns the dir.

        Layout: ``manifest.json`` (format, shard count, partitioner state)
        and one engine snapshot per shard under ``shard-00/``, ``shard-01``,
        ...  Restorable with :meth:`load` in another process.  ``extra_meta``
        is stored verbatim under the manifest's ``"extra"`` key, mirroring
        :func:`repro.storage.snapshot.save_engine_snapshot`.
        """
        self._require_built()
        # Fail on an unserializable measure before any I/O happens.
        _measure_payload(self.measure)
        final = Path(path)
        # The whole deployment is staged and swapped in atomically: a failed
        # shard write leaves the previous snapshot untouched, and no stale
        # shard directories can survive an overwrite.
        with snapshot_staging(final) as directory:
            shard_names = []
            for shard_id, shard in enumerate(self._shards):
                name = f"shard-{shard_id:02d}"
                save_engine_snapshot(shard, directory / name)
                shard_names.append(name)
            partitioner_state: Dict[str, object] = {"kind": self.partitioner.kind}
            if isinstance(self.partitioner, RoundRobinPartitioner):
                partitioner_state["next_shard"] = self.partitioner.next_shard
            manifest = {
                "format": SHARDED_SNAPSHOT_FORMAT,
                "format_version": SNAPSHOT_FORMAT_VERSION,
                "num_shards": self.num_shards,
                "partitioner": partitioner_state,
                "shards": shard_names,
                "config": {
                    "query_cache_size": self.config.query_cache_size,
                    "batch_workers": self.config.batch_workers,
                },
                "fingerprint": self.config.fingerprint(),
            }
            if extra_meta is not None:
                manifest["extra"] = dict(extra_meta)
            with open(directory / _MANIFEST_NAME, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2)
        return final

    @classmethod
    def load(
        cls,
        path: PathLike,
        measure: Optional[AssociationMeasure] = None,
        mmap_columnar: bool = False,
    ) -> "ShardedEngine":
        """Restore a sharded deployment saved with :meth:`save`.

        Every shard cold-starts from its engine snapshot (no re-signing);
        the routing table is rebuilt from shard membership and the
        partitioner resumes from its serialized state.  The router dataset
        is reassembled shard by shard, so its entity iteration order may
        differ from the original -- query results are unaffected.
        ``mmap_columnar`` is forwarded to every shard's
        :func:`~repro.storage.snapshot.load_engine_snapshot` (zero-copy
        compiled arrays for multi-process serving workers).
        """
        directory = Path(path)
        manifest = read_manifest(directory)
        if manifest.get("format") != SHARDED_SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"{directory} holds a {manifest.get('format')!r} snapshot; "
                "load it with TraceQueryEngine.load()"
            )
        try:
            num_shards = int(manifest["num_shards"])
            shard_names = list(manifest["shards"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"invalid sharded snapshot manifest in {directory}: {exc}"
            ) from exc
        shard_engines = [
            load_engine_snapshot(directory / name, measure=measure, mmap_columnar=mmap_columnar)
            for name in shard_names
        ]
        if len(shard_engines) != num_shards:
            raise SnapshotError(
                f"manifest lists {num_shards} shards but {len(shard_engines)} were found"
            )
        # Every shard must carry the deployment's config identity: a shard
        # directory swapped in from a different deployment fails here
        # instead of serving with inconsistent signatures.
        deployment_fingerprint = manifest.get("fingerprint")
        for name, shard in zip(shard_names, shard_engines):
            if shard.config.fingerprint() != deployment_fingerprint:
                raise SnapshotError(
                    f"shard {name} in {directory} was built with a different engine "
                    "config than the deployment manifest records; the snapshot mixes "
                    "shards from different builds"
                )

        first = shard_engines[0]
        router = TraceDataset(
            first.dataset.hierarchy,
            horizon=first.dataset.explicit_horizon,
        )
        shard_of: Dict[str, int] = {}
        for shard_id, shard in enumerate(shard_engines):
            for entity in shard.dataset.entities:
                if entity in shard_of:
                    raise SnapshotError(
                        f"entity {entity!r} appears in shard {shard_of[entity]} and "
                        f"shard {shard_id} of {directory}; the snapshot mixes shards "
                        "from different builds"
                    )
                router.restore_trace(entity, shard.dataset.trace(entity))
                shard_of[entity] = shard_id

        try:
            partitioner_state = manifest["partitioner"]
            kind = partitioner_state["kind"]
            if kind == RoundRobinPartitioner.kind:
                # Constructing (rather than assigning next_shard after the
                # fact) runs the 0 <= next_shard < num_shards validation.
                partitioner: Partitioner = RoundRobinPartitioner(
                    num_shards, next_shard=int(partitioner_state.get("next_shard", 0))
                )
            else:
                partitioner = make_partitioner(kind, num_shards)
            config = first.config.with_overrides(**manifest.get("config", {}))
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"invalid sharded snapshot manifest in {directory}: {exc}"
            ) from exc
        engine = cls(
            router,
            measure=first.measure,
            config=config,
            num_shards=num_shards,
            partitioner=partitioner,
        )
        engine._shards = shard_engines
        engine._shard_of = shard_of
        engine._share_hash_family()
        return engine

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        built = "built" if self.is_built else "not built"
        return (
            f"ShardedEngine({self.dataset.describe()}, shards={self.num_shards}, "
            f"partitioner={self.partitioner.kind}, {built})"
        )
