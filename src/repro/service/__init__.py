"""Serving subsystem: sharded engines, entity partitioners, result caching.

This package turns the single in-memory :class:`~repro.core.engine.TraceQueryEngine`
into a servable deployment:

* :mod:`~repro.service.partition` -- deterministic entity-to-shard
  assignment (stable hash, round-robin, or consistent hashing);
* :mod:`~repro.service.merge` -- the deterministic top-k merge shared by
  the in-process sharded engine and the cluster coordinator;
* :mod:`~repro.service.sharded` -- :class:`ShardedEngine`, which builds N
  entity partitions in parallel, routes updates to the owning shard, and
  merges per-shard top-k results into exact global answers;
* :mod:`~repro.service.cache` -- the size-bounded LRU query-result cache
  wired into both engines via ``EngineConfig.query_cache_size``.

Durable index state lives one layer down, in
:mod:`repro.storage.snapshot`; ``ShardedEngine.save``/``load`` compose the
two (per-shard snapshots plus a routing manifest).
"""

from repro.service.cache import CacheStats, QueryResultCache
from repro.service.merge import merge_topk_items, merge_topk_payloads, merge_topk_results
from repro.service.partition import (
    ConsistentHashPartitioner,
    HashPartitioner,
    Partitioner,
    RoundRobinPartitioner,
    make_partitioner,
)
from repro.service.sharded import ShardedEngine

__all__ = [
    "CacheStats",
    "ConsistentHashPartitioner",
    "HashPartitioner",
    "Partitioner",
    "QueryResultCache",
    "RoundRobinPartitioner",
    "ShardedEngine",
    "make_partitioner",
    "merge_topk_items",
    "merge_topk_payloads",
    "merge_topk_results",
]
