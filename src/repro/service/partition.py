"""Entity partitioners: deciding which shard owns which entity.

Both strategies are deterministic *across processes* -- a requirement for
snapshot round-trips and for routing updates to the shard that already
holds an entity:

* :class:`HashPartitioner` keys on a stable BLAKE2b digest of the entity
  identifier (never Python's salted ``hash()``), so the same entity always
  lands on the same shard regardless of insertion order.
* :class:`RoundRobinPartitioner` deals new entities out in rotation, which
  balances shard sizes exactly; its rotation cursor is part of the sharded
  snapshot so restored deployments keep assigning consistently.
* :class:`ConsistentHashPartitioner` routes over a
  :class:`~repro.cluster.hashring.ConsistentHashRing` (virtual-node
  consistent hashing), the cluster tier's partitioner: growing or
  shrinking the shard count remaps only ``~1/N`` of the entities, where
  :class:`HashPartitioner`'s modulo reduction would remap nearly all.
"""

from __future__ import annotations

import hashlib
from typing import Union

__all__ = [
    "ConsistentHashPartitioner",
    "HashPartitioner",
    "Partitioner",
    "RoundRobinPartitioner",
    "make_partitioner",
]


class Partitioner:
    """Assigns entities to one of ``num_shards`` shards.

    Subclasses implement :meth:`assign`, which is consulted once per *new*
    entity; the sharded engine records the decision and routes every later
    update or removal of that entity to the same shard.
    """

    #: Short identifier used by the CLI and the sharded snapshot manifest.
    kind: str = "abstract"

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)

    def assign(self, entity: str) -> int:
        """The shard index in ``[0, num_shards)`` for a new entity."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class HashPartitioner(Partitioner):
    """Stable hash partitioning on the entity identifier."""

    kind = "hash"

    def assign(self, entity: str) -> int:
        """A stable digest of the identifier, reduced modulo the shard count.

        blake2b rather than ``hash()``: assignments must agree across
        processes and Python releases (``PYTHONHASHSEED`` varies), because
        snapshots rebuild the routing table from shard membership.
        """
        digest = hashlib.blake2b(entity.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.num_shards


class RoundRobinPartitioner(Partitioner):
    """Deal new entities out in rotation (exactly balanced shard sizes)."""

    kind = "round_robin"

    def __init__(self, num_shards: int, next_shard: int = 0) -> None:
        super().__init__(num_shards)
        if not 0 <= next_shard < num_shards:
            raise ValueError(
                f"next_shard must be in [0, {num_shards}), got {next_shard}"
            )
        self.next_shard = int(next_shard)

    def assign(self, entity: str) -> int:
        """The next shard in rotation (the identifier itself is ignored)."""
        shard = self.next_shard
        self.next_shard = (self.next_shard + 1) % self.num_shards
        return shard


class ConsistentHashPartitioner(Partitioner):
    """Consistent hashing over virtual nodes -- the cluster tier's router.

    Shard ``i`` is ring node ``shard-NNN``; assignments are a pure function
    of ``(entity, num_shards)``, so the coordinator, every shard server,
    and a restored snapshot all route identically.  Compared with
    :class:`HashPartitioner`, re-sharding from ``N`` to ``N+1`` moves only
    about ``1/(N+1)`` of the entities (pinned by the cluster tests).
    """

    kind = "consistent_hash"

    def __init__(self, num_shards: int, virtual_nodes: int = 128) -> None:
        super().__init__(num_shards)
        from repro.cluster.hashring import ConsistentHashRing

        self._names = [f"shard-{index:03d}" for index in range(self.num_shards)]
        self._ring = ConsistentHashRing(self._names, virtual_nodes=virtual_nodes)
        self._index = {name: index for index, name in enumerate(self._names)}

    def assign(self, entity: str) -> int:
        """The ring owner of the entity's stable hash point."""
        return self._index[self._ring.node_for(entity)]


_PARTITIONER_KINDS = {
    cls.kind: cls
    for cls in (HashPartitioner, RoundRobinPartitioner, ConsistentHashPartitioner)
}


def make_partitioner(kind: Union[str, Partitioner], num_shards: int) -> Partitioner:
    """Resolve a partitioner argument (name or instance) against a shard count."""
    if isinstance(kind, Partitioner):
        if kind.num_shards != num_shards:
            raise ValueError(
                f"partitioner covers {kind.num_shards} shards but the engine has {num_shards}"
            )
        return kind
    cls = _PARTITIONER_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown partitioner {kind!r}; expected one of {sorted(_PARTITIONER_KINDS)}"
        )
    return cls(num_shards)
