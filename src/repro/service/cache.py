"""A size-bounded LRU cache for top-k query results.

Serving workloads are heavily skewed -- a few query entities account for
most traffic -- so an engine-side result cache turns repeat queries into
dictionary lookups.  Correctness is kept trivial: cache keys include the
engine's configuration fingerprint, and every mutation path invalidates
eagerly, so a cached result is always identical to what a fresh search
would return.  Invalidation has two granularities:

* the single engine clears wholesale (:meth:`QueryResultCache.clear`) on
  every mutation -- one index, so everything it cached is suspect;
* the sharded engine caches *per-shard partial* results and uses
  :meth:`QueryResultCache.invalidate_where` to drop only the entries whose
  shard (or query entity) a streamed update touched -- see
  :mod:`repro.service.sharded`.

**Thread-safety contract** (audited for the serving daemon's request
coalescer, where cache reads/writes race handler threads, the dispatcher
thread, and the ingest path):

* every mutation of the recency list *and* of the :class:`CacheStats`
  counters happens under the cache lock;
* ``fetch_or_compute`` runs ``compute`` outside the lock (searches are
  slow) and tolerates concurrent misses -- the last put wins, which is
  correct because results are deterministic;
* values are copied on hit and on put, so no caller ever holds a reference
  into the cache;
* readers (``__len__``, ``__contains__``, :meth:`QueryResultCache.keys`,
  :meth:`QueryResultCache.stats_snapshot`) also take the lock, so a stats
  endpoint can never observe a half-updated counter pair (e.g. hits
  incremented but lookups not yet reflecting it).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, List, Optional, Tuple, TypeVar

__all__ = ["CacheStats", "QueryResultCache"]

#: Anything with a ``copy()`` returning an independent instance (TopKResult).
_CopyableT = TypeVar("_CopyableT")


class CacheStats:
    """Hit/miss/eviction counters of one :class:`QueryResultCache`."""

    __slots__ = ("hits", "misses", "evictions", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def lookups(self) -> int:
        """Total number of :meth:`QueryResultCache.get` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when never used)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, invalidations={self.invalidations})"
        )


class QueryResultCache:
    """An LRU map from query keys to results, bounded by entry count.

    Parameters
    ----------
    max_entries:
        Maximum number of results retained; the least-recently-*used* entry
        is evicted when a put would exceed it.  Must be >= 1 (a size-0 cache
        is expressed by not constructing one -- see
        ``EngineConfig.query_cache_size``).
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        # Batch executors consult the cache from worker threads; a plain
        # lock keeps the recency list and counters coherent under fan-out.
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key: Hashable) -> Optional[object]:
        """A *copy* of the cached value, refreshed to most-recently-used, or ``None``.

        Copying on every hit -- not only inside :meth:`fetch_or_compute` --
        is what makes the module-level copy-on-hit contract hold for direct
        callers too: a caller mutating the returned result can never poison
        later hits.  The copy happens outside the lock (it touches only the
        caller's value, not the recency list).
        """
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
        return value.copy() if hasattr(value, "copy") else value

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) an entry, evicting the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (the wholesale mutation-path invalidation hook)."""
        with self._lock:
            self._entries.clear()
            self.stats.invalidations += 1

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop exactly the entries whose key satisfies ``predicate``.

        The selective counterpart of :meth:`clear`, used by the sharded
        engine's streaming-update path: an update routed to one shard only
        drops the cache entries that shard (or the updated entities) could
        have influenced, leaving the rest of a warm cache intact.

        ``predicate`` runs under the cache lock -- it must be cheap and must
        not call back into the cache.  Returns the number of entries
        dropped; an invalidation event is counted only when something was
        actually dropped.
        """
        with self._lock:
            doomed: List[Hashable] = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            if doomed:
                self.stats.invalidations += 1
            return len(doomed)

    def fetch_or_compute(self, key: Hashable, compute: Callable[[], _CopyableT]) -> _CopyableT:
        """The cache-protocol used by every query path: copy-on-hit, copy-on-put.

        A hit returns a *copy* of the stored value (:meth:`get` copies), and
        a computed value is stored as a *copy* -- so a caller mutating its
        result can never poison later hits.  ``compute`` runs outside the
        lock (searches are slow); concurrent misses on the same key both
        compute and the last put wins, which is safe because results are
        deterministic.
        """
        cached = self.get(key)
        if cached is not None:
            return cached
        value = compute()
        self.put(key, value.copy())
        return value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> Tuple[Hashable, ...]:
        """Current keys, LRU first (diagnostics and tests)."""
        with self._lock:
            return tuple(self._entries)

    def stats_snapshot(self) -> dict:
        """A coherent plain-dict copy of the counters, taken under the lock.

        This is the read path of the serving daemon's ``/v1/stats``
        endpoint: :attr:`stats` itself is mutated under the lock, so
        reading its fields individually from another thread could observe
        a torn pair (hits bumped, lookups not yet).  The snapshot cannot.
        """
        with self._lock:
            stats = self.stats
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": stats.hits,
                "misses": stats.misses,
                "hit_rate": stats.hit_rate,
                "evictions": stats.evictions,
                "invalidations": stats.invalidations,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryResultCache(entries={len(self)}/{self.max_entries}, {self.stats!r})"
