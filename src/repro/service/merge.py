"""Deterministic top-k merging shared by every fan-out deployment.

The in-process :class:`~repro.service.sharded.ShardedEngine` and the
multi-node cluster coordinator (:mod:`repro.cluster`) answer the same
question from per-shard partial results, and the whole exactness story --
"sharded answers are byte-identical to a single engine's" -- rests on the
merge being one function with one tie-break: concatenate the per-shard
exact top-k lists, sort by ``(-score, entity)``, truncate to ``k``.  The
per-shard lists are admissible under ``bound_mode="per_level"`` (each
shard returns its true local top-k), so the merged list is the true global
top-k.

Two entry points for the two layers:

* :func:`merge_topk_results` works on :class:`~repro.core.query.TopKResult`
  objects (the in-process path);
* :func:`merge_topk_payloads` works on the JSON documents shard servers
  put on the wire, reconstructing the aggregate stats exactly as the
  in-process merge would compute them -- JSON round-trips floats exactly
  (``repr``), so a coordinator merging wire payloads produces the same
  bytes as a single process merging result objects.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.query import QueryStats, TopKResult

__all__ = ["merge_topk_items", "merge_topk_payloads", "merge_topk_results"]


def merge_topk_items(
    item_lists: Sequence[Sequence[Tuple[str, float]]], k: int
) -> List[Tuple[str, float]]:
    """Concatenate per-shard ``(entity, score)`` lists into the global top-k.

    The sort key ``(-score, entity)`` is the repo-wide deterministic
    tie-break (PR 2): equal scores order by entity identifier, so every
    deployment shape ranks ties identically.
    """
    items: List[Tuple[str, float]] = []
    for shard_items in item_lists:
        items.extend(shard_items)
    items.sort(key=lambda pair: (-pair[1], pair[0]))
    return items[:k]


def merge_topk_results(
    query_entity: str, shard_results: Sequence[TopKResult], k: int
) -> TopKResult:
    """Merge exact per-shard top-k lists into the global top-k."""
    stats = QueryStats(k=k)
    for shard_result in shard_results:
        shard_stats = shard_result.stats
        stats.entities_scored += shard_stats.entities_scored
        stats.nodes_visited += shard_stats.nodes_visited
        stats.leaves_visited += shard_stats.leaves_visited
        stats.bound_computations += shard_stats.bound_computations
        stats.population += shard_stats.population
        stats.terminated_early = stats.terminated_early or shard_stats.terminated_early
    items = merge_topk_items([result.items for result in shard_results], k)
    return TopKResult(query_entity=query_entity, items=items, stats=stats)


def merge_topk_payloads(
    query: str, payloads: Sequence[Dict[str, object]], k: int
) -> Dict[str, object]:
    """Merge per-shard wire documents into one ``topk_result_payload`` shape.

    ``payloads`` are per-shard documents as produced by
    :func:`repro.server.protocol.topk_result_payload`.  The aggregate stats
    mirror :func:`merge_topk_results` exactly: work counters sum,
    ``terminated_early`` is an any-of, and ``pruning_effectiveness`` is
    recomputed from the summed counters with the same clamped formula as
    :attr:`~repro.core.query.QueryStats.pruning_effectiveness` -- so the
    merged document matches what a single process would have serialised.
    """
    entities_scored = 0
    population = 0
    terminated_early = False
    item_lists: List[List[Tuple[str, float]]] = []
    for payload in payloads:
        stats = payload["stats"]
        entities_scored += stats["entities_scored"]
        population += stats["population"]
        terminated_early = terminated_early or bool(stats["terminated_early"])
        item_lists.append(
            [(item["entity"], item["score"]) for item in payload["results"]]
        )
    checked = 0.0 if population == 0 else entities_scored / population
    merged = merge_topk_items(item_lists, k)
    return {
        "query": query,
        "results": [{"entity": entity, "score": score} for entity, score in merged],
        "stats": {
            "entities_scored": entities_scored,
            "population": population,
            "pruning_effectiveness": max(0.0, min(1.0, 1.0 - checked)),
            "terminated_early": terminated_early,
        },
    }
