"""The locality/cluster-bitmap baseline of Section 7.2.

The baseline partitions base ST-cells into clusters of frequently
co-occurring cells (using the frequent-pattern substrate in
:mod:`repro.baselines.fpm`), represents every entity as a bit vector over the
clusters (bit ``i`` set iff the entity has presence in at least one cell of
cluster ``i``), groups entities by identical bit vectors, and answers top-k
queries by visiting groups in decreasing order of an association-degree upper
bound, scoring the contained entities exactly, and stopping once the k-th
best exact score dominates all remaining groups.

Because an entity's base cells are contained in the union of its set
clusters, restricting the query to the cells of those clusters yields an
admissible upper bound for every entity of the group (the coarser levels are
left un-restricted, which keeps the bound valid at the price of looseness --
exactly the weakness the paper attributes to this approach).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.baselines.fpm import cluster_cells_by_cooccurrence
from repro.core.query import QueryStats, TopKResult
from repro.measures.base import AssociationMeasure
from repro.traces.dataset import TraceDataset
from repro.traces.events import STCell

__all__ = ["ClusterBitmapIndex"]

BitVector = FrozenSet[int]


class ClusterBitmapIndex:
    """Bit-vector grouping of entities over co-occurrence clusters of ST-cells.

    Parameters
    ----------
    dataset:
        The trace dataset to index.
    measure:
        The association degree measure used both for bounds and exact scores.
    num_clusters:
        Target number of ST-cell clusters (the bit-vector width).
    max_cluster_size:
        Cap on the number of cells merged into one cluster.
    """

    def __init__(
        self,
        dataset: TraceDataset,
        measure: AssociationMeasure,
        num_clusters: int = 64,
        max_cluster_size: int = 64,
    ) -> None:
        self.dataset = dataset
        self.measure = measure
        self.num_clusters = num_clusters
        self.max_cluster_size = max_cluster_size
        self._cell_cluster: Dict[STCell, int] = {}
        self._groups: Dict[BitVector, List[str]] = {}
        self._built = False

    # ------------------------------------------------------------------
    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has run."""
        return self._built

    @property
    def num_groups(self) -> int:
        """Number of distinct bit vectors (entity groups)."""
        return len(self._groups)

    def build(self) -> "ClusterBitmapIndex":
        """Cluster ST-cells and group entities by their cluster bit vectors."""
        transactions = [
            self.dataset.cell_sequence(entity).base_cells for entity in self.dataset.entities
        ]
        self._cell_cluster = cluster_cells_by_cooccurrence(
            transactions, num_clusters=self.num_clusters, max_cluster_size=self.max_cluster_size
        )
        self._groups = {}
        for entity in self.dataset.entities:
            vector = self._bit_vector(self.dataset.cell_sequence(entity).base_cells)
            self._groups.setdefault(vector, []).append(entity)
        self._built = True
        return self

    def _bit_vector(self, base_cells: FrozenSet[STCell]) -> BitVector:
        return frozenset(
            self._cell_cluster[cell] for cell in base_cells if cell in self._cell_cluster
        )

    def cluster_of(self, cell: STCell) -> Optional[int]:
        """Cluster id of a base ST-cell, or ``None`` if the cell was unseen."""
        return self._cell_cluster.get(cell)

    # ------------------------------------------------------------------
    def _group_upper_bound(
        self,
        vector: BitVector,
        query_cells: Tuple[STCell, ...],
        query_clusters: Tuple[Optional[int], ...],
        query_level_sizes: Tuple[int, ...],
    ) -> float:
        """Upper bound on the degree between the query and any entity of a group."""
        surviving_base = sum(
            1 for cluster in query_clusters if cluster is not None and cluster in vector
        )
        # Coarse levels stay unrestricted (loose but admissible): entities can
        # form coarse-level AjPIs with the query even when they share none of
        # its base cells, so the bound must not collapse to zero with them.
        overlaps = [(size, size, size) for size in query_level_sizes[:-1]]
        base_total = query_level_sizes[-1]
        overlaps.append((surviving_base, base_total, surviving_base))
        value = self.measure.score_levels(overlaps)
        return min(max(value, 0.0), 1.0)

    def search(self, query_entity: str, k: int) -> TopKResult:
        """Answer a top-k query with the bitmap grouping (baseline algorithm)."""
        if not self._built:
            raise RuntimeError("the cluster-bitmap index has not been built yet")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")

        query_sequence = self.dataset.cell_sequence(query_entity)
        query_cells = tuple(sorted(query_sequence.base_cells))
        query_clusters = tuple(self._cell_cluster.get(cell) for cell in query_cells)
        query_level_sizes = tuple(len(level) for level in query_sequence.levels)

        stats = QueryStats(population=self.dataset.num_entities, k=k)
        result_heap: List[Tuple[float, str]] = []
        tie_breaker = itertools.count()

        # Order groups by decreasing upper bound.
        ordered: List[Tuple[float, int, BitVector]] = []
        for vector in self._groups:
            bound = self._group_upper_bound(
                vector, query_cells, query_clusters, query_level_sizes
            )
            stats.bound_computations += 1
            heapq.heappush(ordered, (-bound, next(tie_breaker), vector))

        while ordered:
            negative_bound, _tie, vector = heapq.heappop(ordered)
            bound = -negative_bound
            stats.nodes_visited += 1
            if len(result_heap) == k and result_heap[0][0] >= bound:
                stats.terminated_early = True
                break
            stats.leaves_visited += 1
            for entity in self._groups[vector]:
                if entity == query_entity:
                    continue
                score = self.measure.score(self.dataset.cell_sequence(entity), query_sequence)
                stats.entities_scored += 1
                if score <= 0.0:
                    continue
                if len(result_heap) < k:
                    heapq.heappush(result_heap, (score, entity))
                elif score > result_heap[0][0]:
                    heapq.heapreplace(result_heap, (score, entity))

        items = sorted(result_heap, key=lambda pair: (-pair[0], pair[1]))
        return TopKResult(
            query_entity=query_entity,
            items=[(entity, score) for score, entity in items],
            stats=stats,
        )
