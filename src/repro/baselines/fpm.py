"""Frequent-pattern-mining substrate for the Section 7.2 baseline.

The baseline treats each entity's base ST-cell set as a transaction and each
ST-cell as an item, and looks for frequently co-occurring ST-cells to cluster
them.  Two pieces are provided:

* :class:`FrequentPatternMiner` -- a small Apriori-style miner producing
  frequent itemsets up to a configurable size (also used on its own in the
  baseline discussion of Section 2.4);
* :func:`cluster_cells_by_cooccurrence` -- a greedy agglomeration of ST-cells
  into clusters driven by pair co-occurrence counts, which is how the
  baseline's bit-vector dimensions are formed.

The paper's observation -- and the reason the baseline performs poorly -- is
that real digital traces show a *low degree of locality across ST-cells*, so
the mined clusters are weak; the experiments of Figure 7.7 reproduce that
behaviour.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from itertools import combinations
from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Tuple

__all__ = ["FrequentPatternMiner", "cluster_cells_by_cooccurrence"]

Item = Hashable
Transaction = FrozenSet[Item]


class FrequentPatternMiner:
    """Apriori-style frequent itemset mining over a list of transactions.

    Parameters
    ----------
    min_support:
        Minimum number of transactions an itemset must appear in.
    max_size:
        Largest itemset size to mine (kept small: the baseline only needs
        pairs, and digital traces rarely support long patterns anyway).
    """

    def __init__(self, min_support: int = 2, max_size: int = 3) -> None:
        if min_support < 1:
            raise ValueError(f"min_support must be >= 1, got {min_support}")
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.min_support = min_support
        self.max_size = max_size

    def mine(self, transactions: Sequence[Iterable[Item]]) -> Dict[FrozenSet[Item], int]:
        """Return every frequent itemset (size 1..max_size) with its support."""
        materialised: List[Transaction] = [frozenset(t) for t in transactions]
        frequent: Dict[FrozenSet[Item], int] = {}

        # Size-1 itemsets.
        item_counts: Counter = Counter()
        for transaction in materialised:
            item_counts.update(transaction)
        current: List[FrozenSet[Item]] = []
        for item, count in item_counts.items():
            if count >= self.min_support:
                itemset = frozenset([item])
                frequent[itemset] = count
                current.append(itemset)

        size = 2
        while current and size <= self.max_size:
            candidates = self._generate_candidates(current, size)
            if not candidates:
                break
            counts: Dict[FrozenSet[Item], int] = defaultdict(int)
            for transaction in materialised:
                if len(transaction) < size:
                    continue
                for candidate in candidates:
                    if candidate <= transaction:
                        counts[candidate] += 1
            current = []
            for candidate, count in counts.items():
                if count >= self.min_support:
                    frequent[candidate] = count
                    current.append(candidate)
            size += 1
        return frequent

    @staticmethod
    def _generate_candidates(
        previous: Sequence[FrozenSet[Item]], size: int
    ) -> List[FrozenSet[Item]]:
        """Join step of Apriori: unions of previous-level itemsets of the right size."""
        candidates: set[FrozenSet[Item]] = set()
        previous_set = set(previous)
        for left, right in combinations(previous, 2):
            union = left | right
            if len(union) != size:
                continue
            # Prune candidates with an infrequent subset.
            if all(frozenset(subset) in previous_set for subset in combinations(union, size - 1)):
                candidates.add(union)
        return sorted(candidates, key=sorted)


def cluster_cells_by_cooccurrence(
    transactions: Sequence[Iterable[Item]],
    num_clusters: int,
    max_cluster_size: int = 64,
) -> Dict[Item, int]:
    """Greedy agglomeration of items into co-occurrence clusters.

    Pairs of items are ranked by the number of transactions containing both;
    the most frequent pairs are merged first (union-find), subject to a
    maximum cluster size, until roughly ``num_clusters`` clusters remain or
    no co-occurring pairs are left.  Items never seen together stay in their
    own singleton cluster.

    Returns
    -------
    dict
        ``item -> cluster id`` with cluster ids in ``[0, actual_clusters)``.
    """
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")

    materialised: List[Transaction] = [frozenset(t) for t in transactions]
    items: List[Item] = sorted({item for transaction in materialised for item in transaction}, key=repr)
    if not items:
        return {}

    pair_counts: Counter = Counter()
    for transaction in materialised:
        if len(transaction) < 2:
            continue
        for pair in combinations(sorted(transaction, key=repr), 2):
            pair_counts[pair] += 1

    parent: Dict[Item, Item] = {item: item for item in items}
    size: Dict[Item, int] = {item: 1 for item in items}

    def find(item: Item) -> Item:
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    clusters_remaining = len(items)
    for (left, right), _count in pair_counts.most_common():
        if clusters_remaining <= num_clusters:
            break
        root_left, root_right = find(left), find(right)
        if root_left == root_right:
            continue
        if size[root_left] + size[root_right] > max_cluster_size:
            continue
        parent[root_right] = root_left
        size[root_left] += size[root_right]
        clusters_remaining -= 1

    # Re-label roots densely.
    labels: Dict[Item, int] = {}
    assignment: Dict[Item, int] = {}
    for item in items:
        root = find(item)
        if root not in labels:
            labels[root] = len(labels)
        assignment[item] = labels[root]
    return assignment
