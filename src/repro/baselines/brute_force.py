"""Exhaustive top-k evaluation.

The brute-force approach computes the association degree between the query
entity and every other entity, keeping the best ``k``.  The paper dismisses
it as prohibitively expensive at the scale of its target applications, but it
remains the correctness oracle for every other method in this repository and
the natural reference point for speed-up measurements.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional

from repro.core.query import QueryStats, TopKResult
from repro.measures.base import AssociationMeasure
from repro.traces.dataset import TraceDataset
from repro.traces.events import CellSequence

__all__ = ["BruteForceTopK"]


class BruteForceTopK:
    """Scan every entity and score it against the query.

    Parameters
    ----------
    dataset:
        The trace dataset.
    measure:
        The association degree measure (shared with the indexed searcher so
        that results are comparable).
    """

    def __init__(self, dataset: TraceDataset, measure: AssociationMeasure) -> None:
        self.dataset = dataset
        self.measure = measure

    def search(
        self,
        query_entity: str,
        k: int,
        candidates: Optional[Iterable[str]] = None,
        sequence_fetcher: Optional[Callable[[str], CellSequence]] = None,
    ) -> TopKResult:
        """Return the exact top-k associates of ``query_entity``.

        ``candidates`` restricts the scan (used by tests); by default every
        entity except the query itself is scored.  Only entities with a
        strictly positive association degree are returned, mirroring the
        problem definition's assumption that all results share AjPIs with the
        query.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        fetch = sequence_fetcher or self.dataset.cell_sequence
        query_sequence = self.dataset.cell_sequence(query_entity)
        stats = QueryStats(population=self.dataset.num_entities, k=k)

        heap: list[tuple[float, str]] = []
        pool = self.dataset.entities if candidates is None else tuple(candidates)
        for entity in pool:
            if entity == query_entity:
                continue
            score = self.measure.score(fetch(entity), query_sequence)
            stats.entities_scored += 1
            if score <= 0.0:
                continue
            if len(heap) < k:
                heapq.heappush(heap, (score, entity))
            elif score > heap[0][0]:
                heapq.heapreplace(heap, (score, entity))

        items = sorted(heap, key=lambda pair: (-pair[0], pair[1]))
        return TopKResult(
            query_entity=query_entity,
            items=[(entity, score) for score, entity in items],
            stats=stats,
        )
