"""Exhaustive top-k evaluation.

The brute-force approach computes the association degree between the query
entity and every other entity, keeping the best ``k``.  The paper dismisses
it as prohibitively expensive at the scale of its target applications, but it
remains the correctness oracle for every other method in this repository and
the natural reference point for speed-up measurements.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional

from repro.core.query import QueryStats, TopKResult, _ReverseOrderStr
from repro.measures.base import AssociationMeasure
from repro.traces.dataset import TraceDataset
from repro.traces.events import CellSequence

__all__ = ["BruteForceTopK"]


class BruteForceTopK:
    """Scan every entity and score it against the query.

    Parameters
    ----------
    dataset:
        The trace dataset.
    measure:
        The association degree measure (shared with the indexed searcher so
        that results are comparable).
    tie_break:
        Boundary-tie policy: ``"arrival"`` (default, scan-order dependent)
        or ``"entity"`` (the searcher's deterministic ``(-score, entity)``
        total order; what the scenario harness's ground truth uses).
    """

    def __init__(
        self,
        dataset: TraceDataset,
        measure: AssociationMeasure,
        tie_break: str = "arrival",
    ) -> None:
        if tie_break not in ("arrival", "entity"):
            raise ValueError(f"tie_break must be 'arrival' or 'entity', got {tie_break!r}")
        self.dataset = dataset
        self.measure = measure
        #: Boundary-tie policy.  ``"arrival"`` (the historical default) keeps
        #: whichever tied entity entered the heap first, which depends on scan
        #: order.  ``"entity"`` retains exactly the top-k under the
        #: ``(-score, entity)`` total order -- the same deterministic
        #: tie-break :class:`~repro.core.query.TopKSearcher` documents -- so
        #: the oracle and the indexed search agree entity-for-entity even
        #: when scores tie at the k-th position.  The scenario harness uses
        #: ``"entity"``.
        self.tie_break = tie_break

    def search(
        self,
        query_entity: str,
        k: int,
        candidates: Optional[Iterable[str]] = None,
        sequence_fetcher: Optional[Callable[[str], CellSequence]] = None,
    ) -> TopKResult:
        """Return the exact top-k associates of ``query_entity``.

        ``candidates`` restricts the scan (used by tests); by default every
        entity except the query itself is scored.  Only entities with a
        strictly positive association degree are returned, mirroring the
        problem definition's assumption that all results share AjPIs with the
        query.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        fetch = sequence_fetcher or self.dataset.cell_sequence
        query_sequence = self.dataset.cell_sequence(query_entity)
        stats = QueryStats(population=self.dataset.num_entities, k=k)

        total_order = self.tie_break == "entity"
        heap: list[tuple] = []
        pool = self.dataset.entities if candidates is None else tuple(candidates)
        for entity in pool:
            if entity == query_entity:
                continue
            score = self.measure.score(fetch(entity), query_sequence)
            stats.entities_scored += 1
            if score <= 0.0:
                continue
            entry = (score, _ReverseOrderStr(entity)) if total_order else (score, entity)
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif (entry > heap[0]) if total_order else (score > heap[0][0]):
                heapq.heapreplace(heap, entry)

        items = sorted(
            ((str(entity), score) for score, entity in heap),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return TopKResult(query_entity=query_entity, items=items, stats=stats)
