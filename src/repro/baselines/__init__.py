"""Baseline approaches the paper compares against.

* :class:`~repro.baselines.brute_force.BruteForceTopK` -- the exhaustive scan
  mentioned at the start of Chapter 4; also the ground truth every
  correctness test compares the MinSigTree searcher against.
* :mod:`~repro.baselines.fpm` -- a small frequent-pattern-mining substrate
  (Apriori-style itemset counting and a co-occurrence based ST-cell
  clustering), needed by
* :class:`~repro.baselines.cluster_bitmap.ClusterBitmapIndex` -- the
  Section 7.2 baseline: cluster ST-cells by co-occurrence, represent each
  entity as a bit vector over clusters, group entities by bit vector, and
  search groups in decreasing upper-bound order.
"""

from repro.baselines.brute_force import BruteForceTopK
from repro.baselines.cluster_bitmap import ClusterBitmapIndex
from repro.baselines.fpm import FrequentPatternMiner, cluster_cells_by_cooccurrence

__all__ = [
    "BruteForceTopK",
    "ClusterBitmapIndex",
    "FrequentPatternMiner",
    "cluster_cells_by_cooccurrence",
]
