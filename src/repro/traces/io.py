"""Plain-text loaders and writers for digital-trace datasets.

Two interchange formats are supported:

* **CSV** with the columns ``entity,unit,start,end`` -- the closest analogue
  of the raw ``<entity, location, timestamp>`` tuples of the paper's
  introduction, plus an explicit end time.
* **JSON Lines** with one object per record:
  ``{"entity": ..., "unit": ..., "start": ..., "end": ...}``.

Both loaders take an existing :class:`~repro.traces.spatial.SpatialHierarchy`
because the hierarchy is metadata that ships separately from the raw traces
(in the applications the paper describes it comes from the venue database or
the operator's cell-site registry).  A hierarchy serializer is included so
datasets can round-trip completely through flat files.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.traces.dataset import TraceDataset
from repro.traces.events import PresenceInstance
from repro.traces.spatial import SpatialHierarchy

__all__ = [
    "iter_traces_csv",
    "load_traces_csv",
    "write_traces_csv",
    "load_traces_jsonl",
    "write_traces_jsonl",
    "load_hierarchy_json",
    "write_hierarchy_json",
]

PathLike = Union[str, Path]

_CSV_FIELDS = ("entity", "unit", "start", "end")


def write_traces_csv(dataset: TraceDataset, path: PathLike) -> int:
    """Write every presence instance of ``dataset`` to a CSV file.

    Returns the number of records written.
    """
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_FIELDS)
        for entity in dataset.entities:
            for presence in dataset.trace(entity):
                writer.writerow([presence.entity, presence.unit, presence.start, presence.end])
                count += 1
    return count


def iter_traces_csv(path: PathLike) -> Iterator[PresenceInstance]:
    """Yield every presence instance of a CSV trace file, in file order.

    The streaming counterpart of :func:`load_traces_csv`: no dataset (and no
    hierarchy validation) is involved, so the same file can be treated as an
    *event log* and replayed record by record -- this is what ``repro
    stream`` and :func:`repro.streaming.read_event_log` build on.

    Raises
    ------
    ValueError
        If the header does not contain the expected columns or a row is
        malformed.
    """
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        missing = set(_CSV_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"trace CSV is missing columns: {sorted(missing)}")
        for line_number, row in enumerate(reader, start=2):
            try:
                yield PresenceInstance(
                    entity=row["entity"],
                    unit=row["unit"],
                    start=int(row["start"]),
                    end=int(row["end"]),
                )
            except (TypeError, ValueError) as exc:
                raise ValueError(f"malformed trace CSV row at line {line_number}: {row}") from exc


def load_traces_csv(
    path: PathLike,
    hierarchy: SpatialHierarchy,
    horizon: Optional[int] = None,
) -> TraceDataset:
    """Load a CSV trace file into a :class:`TraceDataset`.

    Raises
    ------
    ValueError
        If the header does not contain the expected columns or a row is
        malformed.
    """
    dataset = TraceDataset(hierarchy, horizon=horizon)
    for presence in iter_traces_csv(path):
        dataset.add_presence(presence)
    return dataset


def write_traces_jsonl(dataset: TraceDataset, path: PathLike) -> int:
    """Write every presence instance of ``dataset`` as JSON Lines."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for entity in dataset.entities:
            for presence in dataset.trace(entity):
                handle.write(
                    json.dumps(
                        {
                            "entity": presence.entity,
                            "unit": presence.unit,
                            "start": presence.start,
                            "end": presence.end,
                        }
                    )
                )
                handle.write("\n")
                count += 1
    return count


def load_traces_jsonl(
    path: PathLike,
    hierarchy: SpatialHierarchy,
    horizon: Optional[int] = None,
) -> TraceDataset:
    """Load a JSON Lines trace file into a :class:`TraceDataset`."""
    dataset = TraceDataset(hierarchy, horizon=horizon)
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                presence = PresenceInstance(
                    entity=record["entity"],
                    unit=record["unit"],
                    start=int(record["start"]),
                    end=int(record["end"]),
                )
            except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
                raise ValueError(f"malformed trace JSONL record at line {line_number}") from exc
            dataset.add_presence(presence)
    return dataset


def write_hierarchy_json(hierarchy: SpatialHierarchy, path: PathLike) -> None:
    """Serialise an sp-index as a ``unit -> parent`` JSON object."""
    parent_map = {unit.unit_id: unit.parent_id for unit in hierarchy.iter_units()}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(parent_map, handle, indent=2, sort_keys=True)


def load_hierarchy_json(path: PathLike) -> SpatialHierarchy:
    """Load an sp-index written by :func:`write_hierarchy_json`."""
    with open(path, encoding="utf-8") as handle:
        parent_map = json.load(handle)
    if not isinstance(parent_map, dict):
        raise ValueError("hierarchy JSON must be an object mapping unit -> parent")
    return SpatialHierarchy.from_parent_map(parent_map)
