"""Presence instances, ST-cells, and ST-cell set sequences.

A *presence instance* records that an entity was present at a base spatial
unit for a continuous period (Definition 1).  Periods are half-open integer
intervals ``[start, end)`` expressed in base temporal units (e.g. hours).

An *ST-cell* is the combination of one base temporal unit and one spatial
unit; presence instances expand into the base-level ST-cells they cover, and
the per-level ST-cell sets of Section 4.1 are derived by replacing the base
unit with its ancestor at each level of the sp-index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, NamedTuple, Sequence, Tuple

from repro.traces.spatial import SpatialHierarchy

__all__ = ["STCell", "PresenceInstance", "CellSequence", "cells_from_presences"]


class STCell(NamedTuple):
    """A spatial-temporal cell: one base temporal unit at one spatial unit.

    ``unit`` may refer to any level of the sp-index; base-level cells use base
    spatial units, coarser cells use their ancestors.
    """

    time: int
    unit: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"t{self.time}@{self.unit}"


@dataclass(frozen=True, order=True)
class PresenceInstance:
    """A single digital-trace record (Definition 1).

    Instances order lexicographically by ``(entity, unit, start, end)``, which
    makes traces easy to sort and compare in tests and in the external sorter.

    Attributes
    ----------
    entity:
        Identifier of the entity the record belongs to.
    unit:
        Base spatial unit where the entity was present.
    start, end:
        Half-open period ``[start, end)`` in base temporal units.  ``end``
        must be strictly greater than ``start``.
    """

    entity: str
    unit: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"presence period must be non-empty, got [{self.start}, {self.end})"
            )
        if self.start < 0:
            raise ValueError(f"presence start must be non-negative, got {self.start}")

    @property
    def duration(self) -> int:
        """Length of the presence period in base temporal units."""
        return self.end - self.start

    def cells(self) -> Iterator[STCell]:
        """Base-level ST-cells covered by this presence instance."""
        for time in range(self.start, self.end):
            yield STCell(time, self.unit)

    def overlaps(self, other: "PresenceInstance") -> bool:
        """Whether the time periods of two presence instances intersect."""
        return self.start < other.end and other.start < self.end

    def overlap_period(self, other: "PresenceInstance") -> Tuple[int, int]:
        """The intersection of the two periods as ``(start, end)``.

        The result is empty (``start >= end``) when the periods are disjoint.
        """
        return max(self.start, other.start), min(self.end, other.end)


@dataclass(frozen=True)
class CellSequence:
    """The ST-cell set sequence of one entity (Section 4.1).

    ``levels[i]`` is the ST-cell set at sp-index level ``i + 1``;
    ``levels[-1]`` is the base-level set obtained directly from the digital
    trace, and coarser sets replace each base unit by its ancestor at that
    level.
    """

    levels: Tuple[FrozenSet[STCell], ...]

    @property
    def num_levels(self) -> int:
        """The sp-index depth ``m`` this sequence was built for."""
        return len(self.levels)

    @property
    def base_cells(self) -> FrozenSet[STCell]:
        """The level-``m`` (base) ST-cell set, ``seq_a^m`` in the paper."""
        return self.levels[-1]

    def at_level(self, level: int) -> FrozenSet[STCell]:
        """The ST-cell set at sp-index ``level`` (1-based)."""
        if not 1 <= level <= len(self.levels):
            raise ValueError(f"level {level} out of range [1, {len(self.levels)}]")
        return self.levels[level - 1]

    def size_at_level(self, level: int) -> int:
        """Number of ST-cells at ``level``."""
        return len(self.at_level(level))

    def is_empty(self) -> bool:
        """Whether the entity has no presence at all."""
        return not self.levels or not self.levels[-1]

    def restrict_base(self, keep: FrozenSet[STCell], hierarchy: SpatialHierarchy) -> "CellSequence":
        """A new sequence containing only the base cells in ``keep``.

        Used to materialise the *artificial entity* of Theorem 4, whose base
        cell set is the query's base cells minus a (partial) pruned set.
        """
        base = frozenset(cell for cell in self.base_cells if cell in keep)
        return cells_to_sequence(base, hierarchy)


def cells_to_sequence(base_cells: FrozenSet[STCell], hierarchy: SpatialHierarchy) -> CellSequence:
    """Lift a base-level ST-cell set to a full per-level :class:`CellSequence`.

    A cell ``(t, l_x)`` belongs to level ``i`` iff some base descendant of
    ``l_x`` is present at time ``t`` -- which is exactly the ancestor-mapping
    rule of Section 4.1 applied bottom-up.
    """
    num_levels = hierarchy.num_levels
    level_sets: list[set[STCell]] = [set() for _ in range(num_levels)]
    for cell in base_cells:
        path = hierarchy.path(cell.unit)
        if len(path) != num_levels:
            raise ValueError(
                f"cell {cell} does not reference a base spatial unit of the hierarchy"
            )
        for level, unit_id in enumerate(path, start=1):
            level_sets[level - 1].add(STCell(cell.time, unit_id))
    return CellSequence(levels=tuple(frozenset(cells) for cells in level_sets))


def cells_from_presences(
    presences: Sequence[PresenceInstance], hierarchy: SpatialHierarchy
) -> CellSequence:
    """Build the ST-cell set sequence of an entity from its presence instances."""
    base: set[STCell] = set()
    for presence in presences:
        base.update(presence.cells())
    return cells_to_sequence(frozenset(base), hierarchy)
