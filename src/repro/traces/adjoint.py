"""Adjoint presence instances (AjPIs) between entity pairs.

Two presence instances of different entities whose periods intersect form an
*adjoint presence instance* (Definition 3); its level is the depth of the
deepest common ancestor of the two spatial units, and its period is the
intersection of the two periods.  AjPIs are the raw material of every
association degree measure, and their per-level counts and durations are what
Figure 7.1 of the paper reports.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Set, Tuple

from repro.traces.events import PresenceInstance
from repro.traces.spatial import SpatialHierarchy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.traces.dataset import TraceDataset

__all__ = [
    "AdjointPresenceInstance",
    "adjoint_instances",
    "adjoint_durations_by_level",
    "entities_with_ajpi",
]


@dataclass(frozen=True)
class AdjointPresenceInstance:
    """A spatio-temporal co-occurrence of two entities (Definition 3).

    Attributes
    ----------
    entity_a, entity_b:
        The pair of entities involved.
    level:
        Depth of the deepest common ancestor of the two spatial units, i.e.
        ``|path_ab|``; level ``m`` means presence at the same base unit.
    start, end:
        Half-open intersection of the two presence periods.
    """

    entity_a: str
    entity_b: str
    level: int
    start: int
    end: int

    @property
    def duration(self) -> int:
        """Length of the shared period in base temporal units."""
        return self.end - self.start


def adjoint_instances(
    presences_a: Sequence[PresenceInstance],
    presences_b: Sequence[PresenceInstance],
    hierarchy: SpatialHierarchy,
) -> List[AdjointPresenceInstance]:
    """Enumerate all AjPIs between two digital traces.

    Pairs of presence instances whose periods intersect produce one AjPI at
    the level of their units' deepest common ancestor; pairs whose units share
    no ancestor (level 0) produce nothing.

    The scan is a sweep over the two traces sorted by start time, so its cost
    is proportional to the number of overlapping pairs rather than the full
    cross product.
    """
    result: List[AdjointPresenceInstance] = []
    sorted_a = sorted(presences_a, key=lambda p: p.start)
    sorted_b = sorted(presences_b, key=lambda p: p.start)
    start_index = 0
    for pa in sorted_a:
        # Advance past b-presences that end before pa starts; they can never
        # overlap pa or any later a-presence (sorted by start, but ends vary,
        # so only advance while the earliest-starting b ends before pa).
        while start_index < len(sorted_b) and sorted_b[start_index].end <= pa.start:
            start_index += 1
        for pb in sorted_b[start_index:]:
            if pb.start >= pa.end:
                break
            if not pa.overlaps(pb):
                continue
            level = hierarchy.common_ancestor_level(pa.unit, pb.unit)
            if level == 0:
                continue
            start, end = pa.overlap_period(pb)
            result.append(
                AdjointPresenceInstance(
                    entity_a=pa.entity,
                    entity_b=pb.entity,
                    level=level,
                    start=start,
                    end=end,
                )
            )
    return result


def adjoint_durations_by_level(
    presences_a: Sequence[PresenceInstance],
    presences_b: Sequence[PresenceInstance],
    hierarchy: SpatialHierarchy,
) -> Dict[int, int]:
    """Total AjPI duration per level for a pair of traces.

    An AjPI at level ``l`` also counts as an AjPI at every coarser level
    (two entities meeting in the same building also meet in the same street,
    district and city), matching the cumulative reading of Figure 7.1.

    Returns
    -------
    dict
        ``{level: total duration}`` for levels ``1..m``; missing levels mean
        zero shared duration.
    """
    totals: Dict[int, int] = defaultdict(int)
    for ajpi in adjoint_instances(presences_a, presences_b, hierarchy):
        for level in range(1, ajpi.level + 1):
            totals[level] += ajpi.duration
    return dict(totals)


def entities_with_ajpi(
    dataset: "TraceDataset",
    query_entity: str,
    level: int = 1,
) -> Set[str]:
    """Entities that form at least one AjPI with ``query_entity`` at ``level``.

    Uses the dataset's per-level inverted cell index, so the cost is
    proportional to the query entity's footprint rather than the population
    size.  Level ``1`` returns every entity with any spatio-temporal overlap;
    level ``m`` only those sharing a base ST-cell.
    """
    query_cells = dataset.cell_sequence(query_entity).at_level(level)
    found: Set[str] = set()
    for cell in query_cells:
        found.update(dataset.entities_at_cell(cell, level))
    found.discard(query_entity)
    return found
