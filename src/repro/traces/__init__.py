"""Digital-trace data model: spatial hierarchy, presence instances, datasets.

This subpackage implements the substrate defined in Chapter 3 of the paper:

* :class:`~repro.traces.spatial.SpatialHierarchy` -- the *sp-index*, a tree of
  spatial units from the coarsest level 1 down to the base spatial units at
  level ``m``.
* :class:`~repro.traces.events.PresenceInstance` -- a single
  ``<entity, location, period>`` record.
* :class:`~repro.traces.events.STCell` / :class:`~repro.traces.events.CellSequence`
  -- the ST-cell set sequence representation of Section 4.1.
* :class:`~repro.traces.dataset.TraceDataset` -- a collection of digital
  traces organised by entity, with cached ST-cell set sequences.
* :mod:`~repro.traces.adjoint` -- adjoint presence instance (AjPI)
  enumeration between entity pairs.
* :mod:`~repro.traces.io` -- plain-text loaders and writers for trace files.
"""

from repro.traces.adjoint import (
    AdjointPresenceInstance,
    adjoint_durations_by_level,
    adjoint_instances,
    entities_with_ajpi,
)
from repro.traces.dataset import TraceDataset
from repro.traces.events import CellSequence, PresenceInstance, STCell
from repro.traces.io import (
    load_traces_csv,
    load_traces_jsonl,
    write_traces_csv,
    write_traces_jsonl,
)
from repro.traces.spatial import SpatialHierarchy, SpatialUnit

__all__ = [
    "AdjointPresenceInstance",
    "CellSequence",
    "PresenceInstance",
    "STCell",
    "SpatialHierarchy",
    "SpatialUnit",
    "TraceDataset",
    "adjoint_durations_by_level",
    "adjoint_instances",
    "entities_with_ajpi",
    "load_traces_csv",
    "load_traces_jsonl",
    "write_traces_csv",
    "write_traces_jsonl",
]
