"""The sp-index: a hierarchical organisation of spatial units.

The paper assumes that physical locations exhibit a known hierarchical
structure (e.g. city - district - street - building) described by a tree, the
*sp-index*.  Levels are numbered from 1 (the coarsest units, children of a
virtual root) to ``m`` (the *base spatial units*, the atomic locations at
which presence instances are recorded).

:class:`SpatialHierarchy` stores this tree, validates that every base unit
sits at the same depth, and offers the navigation primitives the rest of the
library relies on: parents, children, ancestors at a given level, root-to-unit
paths and dense integer indexes for the units of each level (used by the
hashing layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["SpatialUnit", "SpatialHierarchy"]


@dataclass
class SpatialUnit:
    """A node of the sp-index.

    Attributes
    ----------
    unit_id:
        Application-provided identifier (e.g. ``"W London"`` or ``"L3"``).
    level:
        Level in the sp-index, 1 for the coarsest units, ``m`` for base units.
    parent_id:
        Identifier of the parent unit, or ``None`` for level-1 units (whose
        conceptual parent is the virtual root).
    children_ids:
        Identifiers of the unit's children, in insertion order.
    """

    unit_id: str
    level: int
    parent_id: Optional[str] = None
    children_ids: List[str] = field(default_factory=list)

    @property
    def is_base(self) -> bool:
        """Whether the unit has no children (it is a base spatial unit)."""
        return not self.children_ids


class SpatialHierarchy:
    """The sp-index: a forest of spatial units with a uniform depth.

    The hierarchy is built incrementally with :meth:`add_unit` (parents must
    be added before their children) or in bulk with :meth:`from_parent_map` /
    :meth:`regular`.  Once all units are added, :meth:`validate` (called
    automatically by consumers such as :class:`~repro.traces.dataset.TraceDataset`)
    checks that every leaf lies at the same level ``m``.

    Level-1 units are the coarsest; base spatial units live at level ``m``.
    Multiple level-1 units are allowed, which models the paper's "multiple
    sp-index trees" through a single virtual root.
    """

    def __init__(self) -> None:
        self._units: Dict[str, SpatialUnit] = {}
        self._roots: List[str] = []
        self._validated = False
        self._num_levels = 0
        # Dense per-level indexes, built lazily by validate().
        self._level_index: Dict[int, Dict[str, int]] = {}
        self._level_units: Dict[int, List[str]] = {}
        self._base_descendants: Dict[str, Tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_unit(self, unit_id: str, parent_id: Optional[str] = None) -> SpatialUnit:
        """Add a spatial unit.

        Parameters
        ----------
        unit_id:
            Identifier of the new unit.  Must be unique in the hierarchy.
        parent_id:
            Identifier of the parent unit; ``None`` creates a level-1 unit.

        Returns
        -------
        SpatialUnit
            The newly created unit.

        Raises
        ------
        ValueError
            If the identifier already exists or the parent is unknown.
        """
        if unit_id in self._units:
            raise ValueError(f"duplicate spatial unit: {unit_id!r}")
        if parent_id is None:
            unit = SpatialUnit(unit_id=unit_id, level=1)
            self._roots.append(unit_id)
        else:
            parent = self._units.get(parent_id)
            if parent is None:
                raise ValueError(
                    f"parent {parent_id!r} of {unit_id!r} has not been added yet"
                )
            unit = SpatialUnit(unit_id=unit_id, level=parent.level + 1, parent_id=parent_id)
            parent.children_ids.append(unit_id)
        self._units[unit_id] = unit
        self._validated = False
        return unit

    @classmethod
    def from_parent_map(cls, parent_map: Mapping[str, Optional[str]]) -> "SpatialHierarchy":
        """Build a hierarchy from a ``child -> parent`` mapping.

        Entries whose parent is ``None`` become level-1 units.  The mapping
        may list children before parents; insertion order is resolved here.
        """
        hierarchy = cls()
        pending = dict(parent_map)
        added: set[str] = set()
        # Repeatedly add every unit whose parent is already present.
        while pending:
            progressed = False
            for unit_id in list(pending):
                parent_id = pending[unit_id]
                if parent_id is None or parent_id in added:
                    hierarchy.add_unit(unit_id, parent_id)
                    added.add(unit_id)
                    del pending[unit_id]
                    progressed = True
            if not progressed:
                unresolved = ", ".join(sorted(pending))
                raise ValueError(f"unresolvable parents for units: {unresolved}")
        hierarchy.validate()
        return hierarchy

    @classmethod
    def regular(cls, branching: Sequence[int], prefix: str = "u") -> "SpatialHierarchy":
        """Build a regular hierarchy with the given branching factor per level.

        ``branching[0]`` is the number of level-1 units, ``branching[i]`` the
        number of children of every level-``i`` unit.  Unit identifiers are
        ``"{prefix}{level}_{index}"``.  Useful for tests and examples.
        """
        if not branching:
            raise ValueError("branching must contain at least one level")
        hierarchy = cls()
        previous: List[str] = []
        for count in range(branching[0]):
            unit_id = f"{prefix}1_{count}"
            hierarchy.add_unit(unit_id)
            previous.append(unit_id)
        for level, fanout in enumerate(branching[1:], start=2):
            current: List[str] = []
            for parent_id in previous:
                for child in range(fanout):
                    unit_id = f"{prefix}{level}_{parent_id.split('_', 1)[1]}_{child}"
                    hierarchy.add_unit(unit_id, parent_id)
                    current.append(unit_id)
            previous = current
        hierarchy.validate()
        return hierarchy

    # ------------------------------------------------------------------
    # Validation and derived structures
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants and build the per-level indexes.

        Raises
        ------
        ValueError
            If the hierarchy is empty or its leaves are not all at the same
            depth (the paper requires base spatial units to form level ``m``).
        """
        if not self._units:
            raise ValueError("spatial hierarchy is empty")
        leaf_levels = {unit.level for unit in self._units.values() if unit.is_base}
        if len(leaf_levels) != 1:
            raise ValueError(
                f"all base spatial units must be at the same level, found levels {sorted(leaf_levels)}"
            )
        self._num_levels = leaf_levels.pop()
        self._level_units = {level: [] for level in range(1, self._num_levels + 1)}
        for unit_id, unit in self._units.items():
            self._level_units[unit.level].append(unit_id)
        self._level_index = {
            level: {unit_id: index for index, unit_id in enumerate(unit_ids)}
            for level, unit_ids in self._level_units.items()
        }
        self._base_descendants = {}
        self._validated = True

    def _ensure_validated(self) -> None:
        if not self._validated:
            self.validate()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        """The depth ``m`` of the sp-index (base spatial units live here)."""
        self._ensure_validated()
        return self._num_levels

    @property
    def num_units(self) -> int:
        """Total number of spatial units across all levels."""
        return len(self._units)

    @property
    def num_base_units(self) -> int:
        """Number of base spatial units (the set ``L`` in the paper)."""
        self._ensure_validated()
        return len(self._level_units[self._num_levels])

    @property
    def base_units(self) -> Tuple[str, ...]:
        """Identifiers of all base spatial units, in index order."""
        self._ensure_validated()
        return tuple(self._level_units[self._num_levels])

    def units_at_level(self, level: int) -> Tuple[str, ...]:
        """Identifiers of the units at ``level`` (1-based), in index order."""
        self._ensure_validated()
        if level not in self._level_units:
            raise ValueError(f"level {level} out of range [1, {self._num_levels}]")
        return tuple(self._level_units[level])

    def __contains__(self, unit_id: str) -> bool:
        return unit_id in self._units

    def __len__(self) -> int:
        return len(self._units)

    def unit(self, unit_id: str) -> SpatialUnit:
        """Return the :class:`SpatialUnit` for ``unit_id``."""
        try:
            return self._units[unit_id]
        except KeyError:
            raise KeyError(f"unknown spatial unit: {unit_id!r}") from None

    def level_of(self, unit_id: str) -> int:
        """Level of ``unit_id`` in the sp-index."""
        return self.unit(unit_id).level

    def parent_of(self, unit_id: str) -> Optional[str]:
        """Parent identifier of ``unit_id``, or ``None`` for level-1 units."""
        return self.unit(unit_id).parent_id

    def children_of(self, unit_id: str) -> Tuple[str, ...]:
        """Identifiers of the children of ``unit_id``."""
        return tuple(self.unit(unit_id).children_ids)

    def unit_index(self, unit_id: str) -> int:
        """Dense index of ``unit_id`` among the units of its level."""
        self._ensure_validated()
        unit = self.unit(unit_id)
        return self._level_index[unit.level][unit_id]

    def base_unit_index(self, unit_id: str) -> int:
        """Dense index of a base spatial unit among all base units."""
        self._ensure_validated()
        unit = self.unit(unit_id)
        if unit.level != self._num_levels:
            raise ValueError(f"{unit_id!r} is not a base spatial unit")
        return self._level_index[self._num_levels][unit_id]

    def base_unit_at(self, index: int) -> str:
        """Inverse of :meth:`base_unit_index`."""
        self._ensure_validated()
        return self._level_units[self._num_levels][index]

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def path(self, unit_id: str) -> Tuple[str, ...]:
        """The root-to-unit path (level-1 ancestor first, the unit itself last)."""
        chain: List[str] = []
        current: Optional[str] = unit_id
        while current is not None:
            chain.append(current)
            current = self.unit(current).parent_id
        return tuple(reversed(chain))

    def ancestors(self, unit_id: str) -> Tuple[str, ...]:
        """All proper ancestors of ``unit_id``, ordered from level 1 downwards."""
        return self.path(unit_id)[:-1]

    def ancestor_at_level(self, unit_id: str, level: int) -> str:
        """The (possibly improper) ancestor of ``unit_id`` at ``level``.

        Raises
        ------
        ValueError
            If ``level`` is deeper than the unit's own level.
        """
        unit = self.unit(unit_id)
        if level > unit.level or level < 1:
            raise ValueError(
                f"cannot take the level-{level} ancestor of {unit_id!r} at level {unit.level}"
            )
        chain = self.path(unit_id)
        return chain[level - 1]

    def base_descendants(self, unit_id: str) -> Tuple[str, ...]:
        """All base spatial units in the subtree rooted at ``unit_id``.

        The result is cached; the hashing layer calls this for every
        non-base unit touched by a trace.
        """
        self._ensure_validated()
        cached = self._base_descendants.get(unit_id)
        if cached is not None:
            return cached
        unit = self.unit(unit_id)
        if unit.is_base:
            result: Tuple[str, ...] = (unit_id,)
        else:
            collected: List[str] = []
            stack = list(unit.children_ids)
            while stack:
                current = stack.pop()
                node = self._units[current]
                if node.is_base:
                    collected.append(current)
                else:
                    stack.extend(node.children_ids)
            result = tuple(collected)
        self._base_descendants[unit_id] = result
        return result

    def common_ancestor_level(self, unit_a: str, unit_b: str) -> int:
        """Depth of the deepest common ancestor of two base (or other) units.

        Returns 0 when the units share no ancestor (they belong to different
        level-1 subtrees), which corresponds to an empty ``path_ab`` in the
        paper's AjPI definition.
        """
        path_a = self.path(unit_a)
        path_b = self.path(unit_b)
        depth = 0
        for ancestor_a, ancestor_b in zip(path_a, path_b):
            if ancestor_a != ancestor_b:
                break
            depth += 1
        return depth

    def iter_units(self) -> Iterable[SpatialUnit]:
        """Iterate over every spatial unit in the hierarchy."""
        return iter(self._units.values())

    def describe(self) -> str:
        """A short human-readable summary of the hierarchy shape."""
        self._ensure_validated()
        parts = [
            f"level {level}: {len(self._level_units[level])} units"
            for level in range(1, self._num_levels + 1)
        ]
        return f"SpatialHierarchy(m={self._num_levels}; " + ", ".join(parts) + ")"
