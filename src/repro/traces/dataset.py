"""The trace dataset: digital traces organised by entity.

:class:`TraceDataset` is the substrate every other component works on.  It
stores presence instances per entity, lazily materialises and caches each
entity's ST-cell set sequence (Section 4.1), and maintains per-level inverted
indexes from ST-cells to the entities present in them -- used by the
distribution analyses and the AjPI helpers.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.traces.events import CellSequence, PresenceInstance, STCell, cells_from_presences
from repro.traces.spatial import SpatialHierarchy

__all__ = ["TraceDataset"]


class TraceDataset:
    """A collection of digital traces over one sp-index.

    Parameters
    ----------
    hierarchy:
        The sp-index locating every presence instance.
    horizon:
        Optional number of base temporal units covered by the dataset.  When
        omitted it is derived from the data (the largest ``end`` seen).  The
        horizon fixes the hash range ``|S| = |L| * horizon`` used by the
        signature layer, so appending data beyond a fixed horizon is allowed
        but keeps the original hash range.
    """

    def __init__(self, hierarchy: SpatialHierarchy, horizon: Optional[int] = None) -> None:
        hierarchy.validate()
        self._hierarchy = hierarchy
        self._explicit_horizon = horizon
        self._max_end = 0
        self._presences: Dict[str, List[PresenceInstance]] = {}
        self._sequence_cache: Dict[str, CellSequence] = {}
        # level -> cell -> set of entities, built lazily per level.
        self._cell_index: Dict[int, Dict[STCell, Set[str]]] = {}
        #: Monotone counter bumped by every mutation (adds, removals,
        #: expiry, trace replacement).  Derived structures that freeze a
        #: view of the dataset -- the columnar query kernel's per-level
        #: cell-membership arrays -- record the value they were compiled at
        #: and recompile lazily when it moved.
        self.mutation_count: int = 0
        # Touch journal mirroring MinSigTree's: entity -> mutation_count at
        # its last mutation, with a floor below which the journal cannot
        # answer.  The columnar kernel's incremental patch unions this with
        # the tree's journal to find the rows it must recompute.
        self._touched: Dict[str, int] = {}
        self._touched_floor: int = 0

    # ------------------------------------------------------------------
    # Construction and mutation
    # ------------------------------------------------------------------
    def add_presence(self, presence: PresenceInstance) -> None:
        """Append one presence instance to its entity's digital trace."""
        if presence.unit not in self._hierarchy:
            raise KeyError(f"unknown spatial unit {presence.unit!r}")
        if self._hierarchy.level_of(presence.unit) != self._hierarchy.num_levels:
            raise ValueError(
                f"presence instances must reference base spatial units, got {presence.unit!r}"
            )
        self._presences.setdefault(presence.entity, []).append(presence)
        self._max_end = max(self._max_end, presence.end)
        self._invalidate(presence.entity)

    def add_record(self, entity: str, unit: str, time: int, duration: int = 1) -> None:
        """Convenience wrapper: add a presence of ``duration`` units at ``time``."""
        self.add_presence(PresenceInstance(entity=entity, unit=unit, start=time, end=time + duration))

    def extend(self, presences: Iterable[PresenceInstance]) -> None:
        """Append many presence instances."""
        for presence in presences:
            self.add_presence(presence)

    def remove_entity(self, entity: str) -> None:
        """Drop an entity and its whole digital trace."""
        if entity not in self._presences:
            raise KeyError(f"unknown entity {entity!r}")
        del self._presences[entity]
        self._invalidate(entity)

    def expire_before(self, cutoff: int) -> Dict[str, int]:
        """Drop every presence instance whose period ends at or before ``cutoff``.

        This is the sliding-window retraction primitive used by
        :mod:`repro.streaming`: a window of length ``W`` over a stream whose
        newest event ends at ``watermark`` keeps exactly the records with
        ``end > watermark - W``.  Entities whose whole trace expires are
        removed outright (they no longer exist in the dataset).

        The horizon never shrinks: an explicit horizon is fixed at
        construction, and a derived one keeps the largest ``end`` ever seen,
        so hash ranges -- and therefore signatures of surviving records --
        are unaffected by expiry.

        Returns
        -------
        Dict[str, int]
            Number of presence instances removed per affected entity (only
            entities that lost at least one record appear).  Check
            ``entity in dataset`` afterwards to tell partial from full
            expiry.
        """
        removed: Dict[str, int] = {}
        for entity in list(self._presences):
            trace = self._presences[entity]
            surviving = [presence for presence in trace if presence.end > cutoff]
            dropped = len(trace) - len(surviving)
            if not dropped:
                continue
            removed[entity] = dropped
            if surviving:
                self._presences[entity] = surviving
            else:
                del self._presences[entity]
            self._invalidate(entity)
        return removed

    def replace_trace(self, entity: str, presences: Iterable[PresenceInstance]) -> None:
        """Replace an entity's digital trace wholesale (used by update tests)."""
        materialised = list(presences)
        for presence in materialised:
            if presence.entity != entity:
                raise ValueError(
                    f"presence for {presence.entity!r} passed while replacing trace of {entity!r}"
                )
        self._presences[entity] = []
        self._invalidate(entity)
        self.extend(materialised)

    def restore_trace(self, entity: str, presences: Iterable[PresenceInstance]) -> None:
        """Trusted bulk append of one entity's whole trace (the snapshot path).

        Skips the per-record hierarchy lookups of :meth:`add_presence` --
        the records were validated when they were first added -- which makes
        cold-starting a large dataset from a snapshot a straight list build.
        The horizon and caches are maintained exactly as for normal appends.

        Raises
        ------
        ValueError
            If the entity already has a trace (restore is load-time only) or
            a record belongs to a different entity.
        """
        if entity in self._presences:
            raise ValueError(f"entity {entity!r} already has a trace; restore is load-time only")
        trace = list(presences)
        for presence in trace:
            if presence.entity != entity:
                raise ValueError(
                    f"presence for {presence.entity!r} passed while restoring trace of {entity!r}"
                )
        self._presences[entity] = trace
        if trace:
            self._max_end = max(self._max_end, max(presence.end for presence in trace))
        self._invalidate(entity)

    def _invalidate(self, entity: str) -> None:
        self.mutation_count += 1
        self._touched[entity] = self.mutation_count
        # Overflow valve (see MinSigTree._record_touch): reset rather than
        # scan an unbounded journal; consumers recompile once, always safe.
        if len(self._touched) > max(1024, 4 * len(self._presences)):
            self._touched.clear()
            self._touched_floor = self.mutation_count
        self._sequence_cache.pop(entity, None)
        # The inverted indexes are rebuilt from scratch on next use; updates
        # are rare compared to reads in every workload we model.
        self._cell_index.clear()

    def touched_entities_since(self, mutation_count: int) -> Optional[Set[str]]:
        """Entities mutated after ``mutation_count``, or ``None``.

        ``None`` means the touch journal no longer reaches back that far
        (an overflow reset raised its floor); callers must then treat every
        entity as potentially changed.
        """
        if mutation_count < self._touched_floor:
            return None
        if mutation_count >= self.mutation_count:
            return set()
        return {
            entity
            for entity, touched_at in self._touched.items()
            if touched_at > mutation_count
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hierarchy(self) -> SpatialHierarchy:
        """The sp-index the dataset is defined over."""
        return self._hierarchy

    @property
    def explicit_horizon(self) -> Optional[int]:
        """The horizon passed at construction, or ``None`` when derived."""
        return self._explicit_horizon

    @property
    def horizon(self) -> int:
        """Number of base temporal units covered (explicit or derived)."""
        if self._explicit_horizon is not None:
            return self._explicit_horizon
        return self._max_end

    @property
    def num_levels(self) -> int:
        """Depth ``m`` of the sp-index."""
        return self._hierarchy.num_levels

    @property
    def entities(self) -> Tuple[str, ...]:
        """All entity identifiers, in insertion order."""
        return tuple(self._presences)

    @property
    def num_entities(self) -> int:
        """Number of entities with at least one presence instance."""
        return len(self._presences)

    @property
    def num_presences(self) -> int:
        """Total number of presence instances across all entities."""
        return sum(len(trace) for trace in self._presences.values())

    @property
    def num_st_cells(self) -> int:
        """Size of the ST-cell universe ``|S| = |L| * horizon``."""
        return self._hierarchy.num_base_units * max(self.horizon, 1)

    def __contains__(self, entity: str) -> bool:
        return entity in self._presences

    def __len__(self) -> int:
        return len(self._presences)

    def __iter__(self) -> Iterator[str]:
        return iter(self._presences)

    def trace(self, entity: str) -> Tuple[PresenceInstance, ...]:
        """The digital trace (all presence instances) of ``entity``."""
        try:
            return tuple(self._presences[entity])
        except KeyError:
            raise KeyError(f"unknown entity {entity!r}") from None

    def cell_sequence(self, entity: str) -> CellSequence:
        """The ST-cell set sequence of ``entity`` (cached)."""
        cached = self._sequence_cache.get(entity)
        if cached is not None:
            return cached
        sequence = cells_from_presences(self.trace(entity), self._hierarchy)
        self._sequence_cache[entity] = sequence
        return sequence

    def average_cells_per_entity(self) -> float:
        """Average base ST-cell count per entity (``C`` in the cost analysis)."""
        if not self._presences:
            return 0.0
        total = sum(len(self.cell_sequence(entity).base_cells) for entity in self._presences)
        return total / len(self._presences)

    # ------------------------------------------------------------------
    # Inverted cell index
    # ------------------------------------------------------------------
    def entities_at_cell(self, cell: STCell, level: Optional[int] = None) -> Set[str]:
        """Entities whose level-``level`` ST-cell set contains ``cell``.

        ``level`` defaults to the level of the cell's spatial unit.  The index
        for a level is built on first use and invalidated by any mutation.
        """
        if level is None:
            level = self._hierarchy.level_of(cell.unit)
        index = self._cell_index.get(level)
        if index is None:
            index = defaultdict(set)
            for entity in self._presences:
                for entity_cell in self.cell_sequence(entity).at_level(level):
                    index[entity_cell].add(entity)
            self._cell_index[level] = index
        return set(index.get(cell, set()))

    def describe(self) -> str:
        """A one-line summary useful in example scripts and logs."""
        return (
            f"TraceDataset(entities={self.num_entities}, presences={self.num_presences}, "
            f"base_units={self._hierarchy.num_base_units}, levels={self.num_levels}, "
            f"horizon={self.horizon})"
        )
