"""Micro-batched event ingestion: :class:`EventIngestor`.

A live trace stream delivers one presence event at a time, but re-signing an
entity per event would repeat the whole ``C * m * n_h`` hash cost for every
appended record.  The ingestor restores the amortisation the bulk pipeline
gives offline builds: events are buffered and flushed through
``engine.add_records`` in micro-batches, so a batch touching ``B`` events of
``E`` distinct entities costs one bulk re-signing of ``E`` entities instead
of ``B`` single-entity passes -- the same trade Figure 7.9 makes for offline
updates, applied continuously.

Each flush also advances the ingestor's :class:`~repro.streaming.window.SlidingWindow`
to the new stream watermark, so windowed deployments expire and compact as a
side effect of ingesting; queries may be issued against the engine at any
point between calls and always see exactly the flushed prefix of the stream.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional

from repro.core.engine import ExpiryReport
from repro.streaming.window import SlidingWindow, StreamingEngine
from repro.traces.events import PresenceInstance

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.streaming.wal import WriteAheadLog

__all__ = ["EventIngestor", "FlushReport", "IngestStats", "StreamingConfig"]


@dataclass
class StreamingConfig:
    """Knobs of one :class:`EventIngestor`.

    Attributes
    ----------
    max_batch_events:
        Flush automatically once this many events are buffered.  Larger
        batches amortise re-signing better (more events per affected entity)
        at the cost of staleness: queries only see flushed events.
    window:
        Sliding-window length in base temporal units; events whose period
        ends more than ``window`` units before the stream watermark are
        expired at the next flush.  ``None`` (default) keeps everything.
    compact_after:
        Auto-compact the index once this many index-changing retractions
        accumulated (see :class:`~repro.streaming.window.SlidingWindow`).
        ``0`` disables auto-compaction.
    """

    max_batch_events: int = 256
    window: Optional[int] = None
    compact_after: int = 0

    def __post_init__(self) -> None:
        if self.max_batch_events < 1:
            raise ValueError(f"max_batch_events must be >= 1, got {self.max_batch_events}")
        if self.window is not None and self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.compact_after < 0:
            raise ValueError(f"compact_after must be >= 0, got {self.compact_after}")


@dataclass
class FlushReport:
    """The outcome of one :meth:`EventIngestor.flush`."""

    #: Events appended to the engine by this flush.
    events: int = 0
    #: Entities re-signed or inserted by the append, in first-seen order.
    affected_entities: List[str] = field(default_factory=list)
    #: The appended events themselves (post late-filter, submission order).
    #: The serving front-end turns these into a delta generation -- together
    #: with :attr:`cutoff` and :attr:`compacted` they describe the flush's
    #: engine mutations completely (see
    #: :class:`repro.server.generation.SnapshotDelta`).
    appended: List[PresenceInstance] = field(default_factory=list)
    #: Buffered events discarded instead of appended because their period
    #: already lies outside the sliding window (late arrivals).
    dropped_late: int = 0
    #: The expiry cutoff this flush applied, ``None`` when no expiry ran.
    cutoff: Optional[int] = None
    #: The expiry triggered by the watermark advance, if any.
    expiry: Optional[ExpiryReport] = None
    #: Whether a compaction ran as part of this flush.
    compacted: bool = False
    #: Wall-clock seconds spent in the flush (append + expiry + compaction).
    seconds: float = 0.0


@dataclass
class IngestStats:
    """Cumulative counters of one :class:`EventIngestor`."""

    #: Events accepted by :meth:`EventIngestor.submit` so far.
    events_submitted: int = 0
    #: Events flushed into the engine so far.
    events_flushed: int = 0
    #: Late arrivals discarded at flush time: their period had already left
    #: the sliding window, so appending them would only create index state
    #: the next expiry could never retract.
    events_dropped_late: int = 0
    #: Number of non-empty flushes.
    batches_flushed: int = 0
    #: Entity re-signings performed by flush appends (sum of affected
    #: entities over flushes; one entity appearing in two flushes counts
    #: twice -- this is the work measure the micro-batching amortises).
    entities_reindexed: int = 0
    #: Wall-clock seconds spent inside :meth:`EventIngestor.flush`.
    seconds_in_flush: float = 0.0
    #: ``time.monotonic()`` of the most recent flush, ``None`` before the
    #: first.  The serving layer turns this into the ingest-lag gauge
    #: (seconds since the buffered backlog last drained into the index).
    last_flush_monotonic: Optional[float] = None

    @property
    def events_buffered(self) -> int:
        """Events submitted but neither flushed nor dropped as late."""
        return self.events_submitted - self.events_flushed - self.events_dropped_late

    @property
    def mean_batch_size(self) -> float:
        """Average events per non-empty flush."""
        if not self.batches_flushed:
            return 0.0
        return self.events_flushed / self.batches_flushed


class EventIngestor:
    """Buffered, windowed event ingestion over one engine.

    Parameters
    ----------
    engine:
        A built :class:`~repro.core.engine.TraceQueryEngine` or
        :class:`~repro.service.sharded.ShardedEngine`.  A sharded engine
        routes every flushed micro-batch to the owning shards and
        invalidates only the affected query-cache entries.
    config:
        Streaming knobs; keyword overrides (``max_batch_events``,
        ``window``, ``compact_after``) are accepted as a convenience,
        mirroring :class:`~repro.core.engine.EngineConfig` handling.

    The ingestor is also a context manager: leaving the ``with`` block
    flushes whatever is buffered.

    Example
    -------
    >>> from repro import SpatialHierarchy, TraceDataset, TraceQueryEngine
    >>> from repro import PresenceInstance
    >>> from repro.streaming import EventIngestor
    >>> hierarchy = SpatialHierarchy.regular([2, 2])
    >>> engine = TraceQueryEngine(
    ...     TraceDataset(hierarchy, horizon=48), num_hashes=16
    ... ).build()
    >>> ingestor = EventIngestor(engine, max_batch_events=2, window=24)
    >>> ingestor.submit(PresenceInstance("ana", "u2_0_0", 1, 3)) is None
    True
    >>> report = ingestor.submit(PresenceInstance("bo", "u2_0_0", 1, 3))
    >>> report.events, report.affected_entities
    (2, ['ana', 'bo'])
    >>> engine.top_k("ana", k=1).entities
    ['bo']
    >>> late = ingestor.extend(
    ...     [PresenceInstance("cy", "u2_1_1", 40, 42)] * 2
    ... )[-1]
    >>> late.expiry.removed_entities      # ana and bo left the 24-unit window
    ['ana', 'bo']
    >>> sorted(engine.dataset.entities)
    ['cy']
    """

    def __init__(
        self,
        engine: StreamingEngine,
        config: Optional[StreamingConfig] = None,
        wal: Optional["WriteAheadLog"] = None,
        **overrides: object,
    ) -> None:
        if config is None:
            config = StreamingConfig()
        if overrides:
            valid = {f.name for f in dataclasses.fields(StreamingConfig)}
            unknown = sorted(set(overrides) - valid)
            if unknown:
                raise TypeError(f"unknown streaming options: {unknown}")
            config = dataclasses.replace(config, **overrides)
        self.engine = engine
        self.config = config
        #: Optional :class:`~repro.streaming.wal.WriteAheadLog`; when set,
        #: every flush durably appends its raw buffer *before* touching the
        #: engine, so a crashed process can replay the suffix of the stream
        #: it had already acknowledged (see :mod:`repro.streaming.wal`).
        self.wal = wal
        self.window = SlidingWindow(
            engine, length=config.window, compact_after=config.compact_after
        )
        self.stats = IngestStats()
        self._buffer: List[PresenceInstance] = []
        self._watermark = 0
        self._flush_hooks: List[Callable[[FlushReport], None]] = []

    def add_flush_hook(self, hook: Callable[[FlushReport], None]) -> None:
        """Register a callback invoked with every :class:`FlushReport`.

        Hooks run at the end of :meth:`flush` -- after the engine was
        updated and the window advanced, including for empty flushes -- in
        registration order, on the flushing thread.  The serving daemon
        uses this to feed its metrics (events flushed, flush latency,
        expiries) without the ingestor knowing about the server; a hook
        must not submit events or flush recursively.
        """
        self._flush_hooks.append(hook)

    @property
    def watermark(self) -> int:
        """Largest event ``end`` submitted so far (0 before the first event).

        The watermark advances on :meth:`submit` -- not on flush -- and
        never moves backwards; together with :meth:`flush` dropping buffered
        events that already lie outside the window, late-arriving history
        can never resurrect records the window discarded.
        """
        return self._watermark

    @property
    def buffered_events(self) -> int:
        """Events waiting in the buffer for the next flush."""
        return len(self._buffer)

    def submit(self, presence: PresenceInstance) -> Optional[FlushReport]:
        """Buffer one event; flush automatically at ``max_batch_events``.

        Returns the :class:`FlushReport` when this submission triggered a
        flush, ``None`` otherwise.
        """
        self._buffer.append(presence)
        self.stats.events_submitted += 1
        if presence.end > self._watermark:
            self._watermark = presence.end
        if len(self._buffer) >= self.config.max_batch_events:
            return self.flush()
        return None

    def extend(self, presences: Iterable[PresenceInstance]) -> List[FlushReport]:
        """Submit many events; returns the reports of every flush triggered."""
        reports = []
        for presence in presences:
            report = self.submit(presence)
            if report is not None:
                reports.append(report)
        return reports

    def ingest_batch(
        self,
        events: Iterable[PresenceInstance],
        watermark: Optional[int] = None,
    ) -> FlushReport:
        """Buffer ``events`` and flush them as *one* micro-batch.

        This is the WAL replay primitive: a
        :class:`~repro.streaming.wal.WalRecord` holds the exact buffer one
        original flush saw, and pushing it through a single flush --
        regardless of the ``max_batch_events`` configured now -- reproduces
        that flush's drop-late decisions, window advance, and
        auto-compaction bit for bit.  ``watermark`` (when given) is applied
        after the events, so a replayed flush stands at the same watermark
        as the original even if later submissions had advanced it.
        """
        for presence in events:
            self._buffer.append(presence)
            self.stats.events_submitted += 1
            if presence.end > self._watermark:
                self._watermark = presence.end
        if watermark is not None and watermark > self._watermark:
            self._watermark = watermark
        return self.flush()

    def restore_stream_state(
        self,
        watermark: int = 0,
        window_cutoff: Optional[int] = None,
        window_churn: int = 0,
    ) -> None:
        """Seed watermark and window state from a snapshot (recovery path).

        A snapshot taken mid-stream embeds the owner's watermark, the last
        applied expiry cutoff, and the churn accumulated towards the next
        auto-compaction (see ``stream_state`` in the snapshot meta).
        Restoring them before WAL replay makes the recovered process expire
        and compact at exactly the same points the crashed one would have --
        without this, a fresh churn counter could defer a compaction and
        leave the rebuilt tree in a different (equivalent but not
        byte-identical) shape.
        """
        if self._buffer:
            raise RuntimeError("cannot restore stream state with events buffered")
        if watermark > self._watermark:
            self._watermark = int(watermark)
        if window_cutoff is not None:
            self.window.restore_state(cutoff=window_cutoff, churn=window_churn)
        else:
            self.window.restore_state(churn=window_churn)

    def stream_state(self) -> dict:
        """The durable counterpart of :meth:`restore_stream_state`."""
        return {
            "watermark": self._watermark,
            "window_cutoff": self.window.cutoff,
            "window_churn": self.window.churn_since_compaction,
        }

    def flush(self) -> FlushReport:
        """Append the buffered micro-batch and advance the window.

        The append goes through ``engine.add_records`` -- the bulk-signature
        pipeline re-signs each affected entity once, however many of its
        events the batch holds.  An empty buffer still advances the window
        (late flushes can expire without ingesting).

        Late arrivals are dropped here, not appended: a buffered event whose
        period ends at or before the window cutoff this flush will stand at
        (``watermark - window``) already lies outside the window, and the
        monotone cutoff would never expire it afterwards.  Dropping it keeps
        the streaming invariant exact -- the index always holds precisely
        the flushed events with ``end > cutoff``.
        """
        started = time.perf_counter()
        report = FlushReport()
        if self._buffer and self.wal is not None:
            # Write-ahead: the raw buffer (pre-filter) plus the watermark is
            # exactly what ``ingest_batch`` needs to reproduce this flush --
            # including its drop-late decisions -- after a crash.  Empty
            # flushes are provably no-ops (the watermark cannot have moved
            # without buffering an event) and are not logged.
            self.wal.append(self._buffer, self._watermark)
        if self._buffer:
            kept = self._buffer
            if self.window.length is not None:
                cutoff = self._watermark - self.window.length
                kept = [presence for presence in self._buffer if presence.end > cutoff]
                report.dropped_late = len(self._buffer) - len(kept)
            report.events = len(kept)
            if kept:
                report.appended = list(kept)
                report.affected_entities = self.engine.add_records(kept)
            self._buffer.clear()
        compactions_before = self.window.stats.compactions
        report.expiry = self.window.advance(self._watermark)
        if report.expiry is not None:
            report.cutoff = self.window.cutoff
        report.compacted = self.window.stats.compactions > compactions_before
        report.seconds = time.perf_counter() - started
        if report.events:
            self.stats.events_flushed += report.events
            self.stats.batches_flushed += 1
            self.stats.entities_reindexed += len(report.affected_entities)
        self.stats.events_dropped_late += report.dropped_late
        self.stats.seconds_in_flush += report.seconds
        self.stats.last_flush_monotonic = time.monotonic()
        for hook in self._flush_hooks:
            hook(report)
        return report

    def close(self) -> FlushReport:
        """Flush whatever is buffered (alias used by the context manager)."""
        return self.flush()

    def __enter__(self) -> "EventIngestor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EventIngestor(buffered={len(self._buffer)}, watermark={self._watermark}, "
            f"max_batch_events={self.config.max_batch_events}, window={self.config.window})"
        )
