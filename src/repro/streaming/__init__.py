"""Streaming ingestion and online index maintenance.

The paper's engine (and PR 1/PR 2's serving stack) assumed a dataset that is
built -- or bulk-refreshed -- offline.  This package opens the *online*
workload: a continuous stream of presence events is ingested while the index
stays queryable throughout, with an optional sliding window that expires old
events and retracts their contribution from the index.

Three pieces compose, smallest to largest:

* :class:`SlidingWindow` -- the expiry/compaction *policy* over one engine:
  turns a stream watermark into ``expire_events`` cutoffs and decides when
  accumulated retraction looseness justifies a compaction
  (:mod:`repro.streaming.window`);
* :class:`EventIngestor` -- buffers per-entity event appends and flushes
  them through the engine's bulk-signature pipeline in micro-batches,
  advancing the window at every flush (:mod:`repro.streaming.ingestor`);
* :func:`replay_events` -- drives an event log through an ingestor at a
  target rate with interleaved top-k queries, which is what the ``repro
  stream`` CLI mode runs (:mod:`repro.streaming.replay`);
* :class:`WriteAheadLog` -- a checksummed, segmented durable log the
  ingestor appends every micro-batch to *before* it mutates the engine, so
  a crashed process replays the acknowledged suffix of the stream instead
  of losing it (:mod:`repro.streaming.wal`, ``docs/DURABILITY.md``).

Everything works identically over a :class:`~repro.core.engine.TraceQueryEngine`
and a :class:`~repro.service.sharded.ShardedEngine` -- both expose the same
``add_records`` / ``expire_events`` / ``compact`` maintenance surface; the
sharded engine routes each micro-batch to the owning shards and invalidates
only the affected query-cache entries.

The *streaming equivalence guarantee* (pinned by
``tests/test_streaming_equivalence.py``): after any interleaving of ingests,
expiries, and compactions, ``top_k`` results are identical to a from-scratch
engine built over the surviving events with the same configuration and
horizon (exactly, under an admissible bound; see ``docs/ARCHITECTURE.md``).
"""

from repro.core.engine import ExpiryReport
from repro.streaming.ingestor import EventIngestor, FlushReport, IngestStats, StreamingConfig
from repro.streaming.replay import ReplayReport, read_event_log, replay_events
from repro.streaming.wal import (
    ReplaySummary,
    WalRecord,
    WalScanReport,
    WriteAheadLog,
    replay_into,
    scan_wal,
)
from repro.streaming.window import SlidingWindow, WindowStats

__all__ = [
    "EventIngestor",
    "ExpiryReport",
    "FlushReport",
    "IngestStats",
    "ReplayReport",
    "ReplaySummary",
    "SlidingWindow",
    "StreamingConfig",
    "WalRecord",
    "WalScanReport",
    "WindowStats",
    "WriteAheadLog",
    "read_event_log",
    "replay_events",
    "replay_into",
    "scan_wal",
]
