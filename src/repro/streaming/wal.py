"""Durable write-ahead log for the streaming ingest path.

The streaming subsystem keeps the index queryable while events arrive, but
until this module everything lived in memory: a crashed process lost every
event since the last snapshot and had to re-ingest the stream from scratch.
:class:`WriteAheadLog` closes that gap with the classic recipe -- append the
micro-batch to a durable log *before* it mutates the engine, and on restart
replay the suffix of the log that postdates the last snapshot.

Format
------
The log is a directory of *segments* named ``wal-%08d.log`` after the
sequence number of their first record.  Every segment starts with the magic
line ``REPROWAL1\\n``; after it, records are framed as::

    <payload_len: u32 le> <crc32(payload): u32 le> <payload bytes>

where the payload is compact UTF-8 JSON::

    {"seq": N, "watermark": W, "events": [[entity, unit, start, end], ...]}

``seq`` numbers records ``1, 2, 3, ...`` across segments with no gaps;
``watermark`` is the ingestor's stream watermark at flush time; ``events``
is the raw flush buffer *before* the late-arrival filter, so replaying a
record through :meth:`~repro.streaming.ingestor.EventIngestor.ingest_batch`
reproduces the original flush exactly -- including its drop-late decisions,
window advance, and auto-compaction.

Recovery semantics
------------------
A crash can tear the tail of the last segment (truncated header, truncated
payload, or a payload whose CRC does not match).  :meth:`WriteAheadLog.open`
scans the log, truncates the last segment back to its longest valid prefix,
and resumes appending after the last intact record; :meth:`records` stops
cleanly at the first invalid or out-of-sequence record wherever it appears,
so a reader never acts on half-written state.  Together with the delta
snapshots of :mod:`repro.server.generation` this gives the serving tiers
exact crash recovery: restore the newest snapshot, then replay every WAL
record with ``seq`` greater than the snapshot's recorded ``wal_seq``.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

from repro.traces.events import PresenceInstance

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.streaming.ingestor import EventIngestor

__all__ = [
    "ReplaySummary",
    "SegmentInfo",
    "WalRecord",
    "WalScanReport",
    "WriteAheadLog",
    "replay_into",
    "scan_wal",
]

#: First bytes of every segment file.
MAGIC = b"REPROWAL1\n"

#: Record framing: payload length and CRC-32 of the payload, little-endian.
_HEADER = struct.Struct("<II")

#: Upper bound on a single payload; anything larger is treated as corruption
#: (a torn length field can otherwise request a multi-gigabyte read).
_MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.log$")


def _segment_name(first_seq: int) -> str:
    return f"wal-{first_seq:08d}.log"


@dataclass(frozen=True)
class WalRecord:
    """One durably logged micro-batch."""

    #: Position in the global record sequence (1-based, gap-free).
    seq: int
    #: Stream watermark at the moment the batch was flushed.
    watermark: int
    #: The raw flush buffer, pre-filter, in submission order.
    events: Tuple[PresenceInstance, ...]

    def encode(self) -> bytes:
        """Frame the record as length + CRC32 header followed by JSON payload."""
        payload = json.dumps(
            {
                "seq": self.seq,
                "watermark": self.watermark,
                "events": [
                    [presence.entity, presence.unit, presence.start, presence.end]
                    for presence in self.events
                ],
            },
            separators=(",", ":"),
        ).encode("utf-8")
        return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload

    @staticmethod
    def decode(payload: bytes) -> "WalRecord":
        """Parse a checksum-verified payload back into a :class:`WalRecord`."""
        doc = json.loads(payload.decode("utf-8"))
        events = tuple(
            PresenceInstance(entity=entity, unit=unit, start=start, end=end)
            for entity, unit, start, end in doc["events"]
        )
        return WalRecord(seq=int(doc["seq"]), watermark=int(doc["watermark"]), events=events)


@dataclass
class SegmentInfo:
    """Scan outcome for one segment file."""

    path: Path
    first_seq: int
    #: Valid records found (stops at the first invalid one).
    records: int = 0
    #: Byte length of the valid prefix (magic plus intact records).
    valid_bytes: int = 0
    #: Actual file size on disk.
    total_bytes: int = 0
    #: What stopped the scan early, ``None`` for a fully valid segment.
    error: Optional[str] = None

    @property
    def truncated(self) -> bool:
        """Whether the file holds bytes beyond its valid prefix."""
        return self.total_bytes > self.valid_bytes


@dataclass
class WalScanReport:
    """Outcome of a full log scan (``repro wal inspect``)."""

    directory: Path
    segments: List[SegmentInfo] = field(default_factory=list)
    #: Sequence number of the last valid record, 0 for an empty log.
    last_seq: int = 0
    #: Valid records across all segments (replayable prefix).
    total_records: int = 0
    #: Events carried by those records.
    total_events: int = 0

    @property
    def corrupt(self) -> bool:
        """Whether any segment holds bytes that cannot be replayed."""
        return any(segment.error is not None for segment in self.segments)

    def to_dict(self) -> dict:
        """JSON form of the report, as emitted by ``repro wal inspect --json``."""
        return {
            "directory": str(self.directory),
            "last_seq": self.last_seq,
            "total_records": self.total_records,
            "total_events": self.total_events,
            "corrupt": self.corrupt,
            "segments": [
                {
                    "file": segment.path.name,
                    "first_seq": segment.first_seq,
                    "records": segment.records,
                    "valid_bytes": segment.valid_bytes,
                    "total_bytes": segment.total_bytes,
                    "error": segment.error,
                }
                for segment in self.segments
            ],
        }


@dataclass
class ReplaySummary:
    """Outcome of :func:`replay_into`."""

    #: WAL records replayed.
    records: int = 0
    #: Events carried by those records (pre-filter counts).
    events: int = 0
    #: Sequence number of the last record replayed (0 if none matched).
    last_seq: int = 0


def _list_segments(directory: Path) -> List[Tuple[int, Path]]:
    found = []
    for path in directory.iterdir():
        match = _SEGMENT_RE.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    found.sort()
    return found


def scan_wal(directory: os.PathLike) -> WalScanReport:
    """Read-only integrity walk over every segment of a log, in order.

    Never modifies the log (``repro wal inspect`` runs this; repairing a
    torn tail is :class:`WriteAheadLog`'s open-time job).  Segments after a
    defective one are reported but carry ``error="unreachable"`` -- replay
    can never get past the defect, so their contents (valid or not) are
    outside the replayable prefix.
    """
    root = Path(directory)
    report = WalScanReport(directory=root)
    expected = 1
    blocked = False
    for first_seq, path in _list_segments(root):
        if blocked:
            info = SegmentInfo(path=path, first_seq=first_seq)
            info.total_bytes = path.stat().st_size
            info.error = "unreachable"
            report.segments.append(info)
            continue
        if first_seq != expected:
            info = SegmentInfo(path=path, first_seq=first_seq)
            info.total_bytes = path.stat().st_size
            info.error = f"sequence gap (expected segment {expected})"
            report.segments.append(info)
            blocked = True
            continue
        info, records = WriteAheadLog._scan_segment(path, first_seq)
        report.segments.append(info)
        report.total_records += info.records
        report.total_events += sum(len(record.events) for record in records)
        if info.records:
            report.last_seq = records[-1].seq
        expected = first_seq + info.records
        if info.error is not None:
            blocked = True
    return report


class WriteAheadLog:
    """Checksummed, segmented append-only event log.

    Parameters
    ----------
    directory:
        Directory holding the segments; created if missing.
    segment_max_bytes:
        Roll to a new segment once the current one reaches this size
        (checked before each append, so segments overshoot by at most one
        record).
    fsync:
        Force every append to stable storage (default).  ``False`` trades
        durability of the last few records for throughput -- the log stays
        *consistent* either way, recovery just resumes from an earlier
        record after a power loss.

    The constructor scans the existing log, truncates any torn tail of the
    last segment, and resumes the sequence after the last intact record;
    use :meth:`scan` for a read-only report instead.
    """

    def __init__(
        self,
        directory: os.PathLike,
        segment_max_bytes: int = 4 * 1024 * 1024,
        fsync: bool = True,
    ) -> None:
        if segment_max_bytes < len(MAGIC) + _HEADER.size:
            raise ValueError(f"segment_max_bytes too small: {segment_max_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = int(segment_max_bytes)
        self.fsync = bool(fsync)
        self._handle: Optional[IO[bytes]] = None
        self._handle_path: Optional[Path] = None
        self._last_seq = 0
        self._recover()

    # ------------------------------------------------------------------
    # Scanning and recovery
    # ------------------------------------------------------------------
    def _segment_paths(self) -> List[Tuple[int, Path]]:
        return _list_segments(self.directory)

    @staticmethod
    def _scan_segment(path: Path, first_seq: int) -> Tuple[SegmentInfo, List[WalRecord]]:
        """Walk one segment, collecting records until the first defect."""
        info = SegmentInfo(path=path, first_seq=first_seq)
        records: List[WalRecord] = []
        data = path.read_bytes()
        info.total_bytes = len(data)
        if not data.startswith(MAGIC):
            info.error = "bad magic"
            return info, records
        offset = len(MAGIC)
        info.valid_bytes = offset
        expected = first_seq
        while offset < len(data):
            if offset + _HEADER.size > len(data):
                info.error = "truncated header"
                break
            length, crc = _HEADER.unpack_from(data, offset)
            if length > _MAX_PAYLOAD_BYTES:
                info.error = "implausible payload length"
                break
            payload_start = offset + _HEADER.size
            payload_end = payload_start + length
            if payload_end > len(data):
                info.error = "truncated payload"
                break
            payload = data[payload_start:payload_end]
            if zlib.crc32(payload) != crc:
                info.error = "checksum mismatch"
                break
            try:
                record = WalRecord.decode(payload)
            except (ValueError, KeyError, TypeError):
                info.error = "undecodable payload"
                break
            if record.seq != expected:
                info.error = f"sequence discontinuity (expected {expected}, got {record.seq})"
                break
            records.append(record)
            expected += 1
            offset = payload_end
            info.records += 1
            info.valid_bytes = offset
        return info, records

    def scan(self) -> WalScanReport:
        """Read-only integrity walk over every segment (see :func:`scan_wal`)."""
        return scan_wal(self.directory)

    def _recover(self) -> None:
        """Truncate a torn tail of the last segment and resume the sequence."""
        report = self.scan()
        self._last_seq = report.last_seq
        if not report.segments:
            return
        last = report.segments[-1]
        if last.error in (None, "unreachable") or last.first_seq > report.last_seq + 1:
            # Either intact, or the defect is structural (gap / unreachable
            # segment): appends go to a fresh segment after last_seq and
            # replay stops at the defect regardless -- nothing to repair.
            return
        # Tear in the active segment: drop the invalid suffix so appends
        # continue a log whose every byte is valid.
        with open(last.path, "r+b") as handle:
            handle.truncate(last.valid_bytes if last.valid_bytes >= len(MAGIC) else 0)
            handle.flush()
            os.fsync(handle.fileno())
        if last.valid_bytes < len(MAGIC):
            # Not even the magic survived; remove the unusable file.
            last.path.unlink()

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the last durably appended record (0 if none)."""
        return self._last_seq

    def _open_for_append(self) -> IO[bytes]:
        if self._handle is not None and not self._handle.closed:
            if self._handle.tell() < self.segment_max_bytes:
                return self._handle
            self._close_handle()
        # Reuse the newest on-disk segment while it has room, else roll.
        paths = self._segment_paths()
        if paths:
            _, newest = paths[-1]
            if newest.stat().st_size < self.segment_max_bytes:
                handle = open(newest, "ab")
                self._handle, self._handle_path = handle, newest
                return handle
        path = self.directory / _segment_name(self._last_seq + 1)
        handle = open(path, "ab")
        if handle.tell() == 0:
            handle.write(MAGIC)
        self._handle, self._handle_path = handle, path
        return handle

    def append(self, events: Sequence[PresenceInstance], watermark: int) -> int:
        """Durably log one micro-batch; returns its sequence number.

        Must be called *before* the batch mutates the engine -- the whole
        point of a write-ahead log -- which is exactly where
        :meth:`EventIngestor.flush` places it.
        """
        record = WalRecord(
            seq=self._last_seq + 1,
            watermark=int(watermark),
            events=tuple(events),
        )
        handle = self._open_for_append()
        handle.write(record.encode())
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self._last_seq = record.seq
        return record.seq

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(self, start_seq: int = 1) -> Iterator[WalRecord]:
        """Yield valid records with ``seq >= start_seq``, in order.

        Iteration stops cleanly at the first invalid, torn, or
        out-of-sequence record -- everything yielded is safe to replay.
        """
        expected = 1
        for first_seq, path in self._segment_paths():
            if first_seq != expected:
                return
            info, records = self._scan_segment(path, first_seq)
            for record in records:
                if record.seq >= start_seq:
                    yield record
            expected = first_seq + info.records
            if info.error is not None:
                return

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _close_handle(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
        self._handle = None
        self._handle_path = None

    def close(self) -> None:
        """Flush and close the append handle (reads stay available)."""
        self._close_handle()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WriteAheadLog({str(self.directory)!r}, last_seq={self._last_seq}, "
            f"fsync={self.fsync})"
        )


def replay_into(
    ingestor: "EventIngestor",
    wal: WriteAheadLog,
    start_seq: int = 1,
) -> ReplaySummary:
    """Drive WAL records with ``seq >= start_seq`` through ``ingestor``.

    Each record is applied with
    :meth:`~repro.streaming.ingestor.EventIngestor.ingest_batch`, which
    reproduces the original flush boundaries exactly (one flush per WAL
    record, whatever ``max_batch_events`` is configured now).  The
    ingestor's own WAL is suspended for the duration so replay does not
    re-append what is already durable.
    """
    summary = ReplaySummary()
    suspended = ingestor.wal
    ingestor.wal = None
    try:
        for record in wal.records(start_seq):
            ingestor.ingest_batch(record.events, watermark=record.watermark)
            summary.records += 1
            summary.events += len(record.events)
            summary.last_seq = record.seq
    finally:
        ingestor.wal = suspended
    return summary
