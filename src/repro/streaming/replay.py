"""Event-log replay: drive a recorded stream through a live engine.

:func:`replay_events` is the harness behind the ``repro stream`` CLI mode
and the streaming benchmarks: it feeds a time-ordered event log into an
:class:`~repro.streaming.ingestor.EventIngestor` -- optionally throttled to
a target event rate -- while serving interleaved top-k queries, and returns
a single report with ingest, expiry, and query-side numbers.

Replay is deterministic apart from wall-clock timings: the same log, engine
configuration, and query schedule produce the same sequence of index states
and the same query results at every step, whatever the rate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core.query import TopKResult
from repro.streaming.ingestor import EventIngestor, IngestStats, StreamingConfig
from repro.streaming.window import StreamingEngine, WindowStats
from repro.traces.events import PresenceInstance
from repro.traces.io import iter_traces_csv

__all__ = ["ReplayReport", "read_event_log", "replay_events"]

PathLike = Union[str, Path]


def read_event_log(path: PathLike) -> List[PresenceInstance]:
    """Load an event log (the ``entity,unit,start,end`` CSV) in stream order.

    Records are sorted by ``(start, end, entity, unit)`` -- the order a live
    collector would deliver them -- regardless of how the file groups them,
    so any trace CSV written by ``repro generate`` doubles as an event log.
    """
    events = list(iter_traces_csv(path))
    events.sort(key=lambda p: (p.start, p.end, p.entity, p.unit))
    return events


@dataclass
class ReplayReport:
    """The outcome of one :func:`replay_events` run."""

    #: Events fed into the ingestor.
    events: int = 0
    #: Wall-clock seconds for the whole replay.
    wall_seconds: float = 0.0
    #: Queries answered, as ``(event index at which the query ran, result)``.
    query_results: List[Tuple[int, TopKResult]] = field(default_factory=list)
    #: Queries skipped because their entity had no flushed data yet.
    queries_skipped: int = 0
    #: The ingestor's cumulative counters.
    ingest: IngestStats = field(default_factory=IngestStats)
    #: The sliding window's cumulative counters.
    window: WindowStats = field(default_factory=WindowStats)

    @property
    def queries_answered(self) -> int:
        """Number of interleaved queries that produced a result."""
        return len(self.query_results)

    @property
    def events_per_second(self) -> float:
        """Achieved ingest rate (0 when the replay finished too fast to time)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events / self.wall_seconds


def replay_events(
    engine: StreamingEngine,
    events: Sequence[PresenceInstance],
    config: Optional[StreamingConfig] = None,
    *,
    rate: float = 0.0,
    query_entities: Sequence[str] = (),
    query_every: int = 0,
    k: int = 10,
    on_query: Optional[Callable[[int, TopKResult], None]] = None,
    **overrides: object,
) -> ReplayReport:
    """Replay ``events`` into ``engine`` with interleaved top-k serving.

    Parameters
    ----------
    engine:
        A built engine (single or sharded); typically empty or holding the
        warm-up prefix of the stream.
    events:
        The event log, already in stream order (see :func:`read_event_log`).
    config:
        Streaming knobs for the underlying :class:`EventIngestor`; keyword
        overrides (``max_batch_events``, ``window``, ``compact_after``) are
        accepted directly.
    rate:
        Target ingest rate in events/second.  ``0`` (default) replays as
        fast as possible -- the right setting for tests and CI; a positive
        rate sleeps to pace submissions, which is what a demo or a
        soak-test wants.
    query_entities:
        Entities to query round-robin between micro-batches.  A query whose
        entity has no flushed data yet is counted in
        :attr:`ReplayReport.queries_skipped` instead of raising.
    query_every:
        Issue one query every this many submitted events (``0`` disables
        interleaved queries).
    k:
        Result size of the interleaved queries.
    on_query:
        Optional callback ``(event_index, result)`` invoked per answered
        query -- the CLI uses it for progress output.

    Returns the :class:`ReplayReport`; the final partial micro-batch is
    flushed before returning, so the engine ends up holding exactly the
    surviving suffix of the log.
    """
    if rate < 0:
        raise ValueError(f"rate must be >= 0, got {rate}")
    if query_every < 0:
        raise ValueError(f"query_every must be >= 0, got {query_every}")
    if query_every and not query_entities:
        raise ValueError("query_every > 0 requires query_entities")

    report = ReplayReport()
    ingestor = EventIngestor(engine, config, **overrides)
    started = time.perf_counter()
    next_query_slot = 0
    for index, event in enumerate(events, start=1):
        if rate > 0:
            target = started + (index - 1) / rate
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        ingestor.submit(event)
        report.events += 1
        if query_every and index % query_every == 0:
            entity = query_entities[next_query_slot % len(query_entities)]
            next_query_slot += 1
            if entity in engine.dataset:
                result = engine.top_k(entity, k=k)
                report.query_results.append((index, result))
                if on_query is not None:
                    on_query(index, result)
            else:
                report.queries_skipped += 1
    ingestor.close()
    report.wall_seconds = time.perf_counter() - started
    report.ingest = ingestor.stats
    report.window = ingestor.window.stats
    return report
