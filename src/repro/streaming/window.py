"""Sliding-window expiry and compaction policy.

:class:`SlidingWindow` owns the two *retraction* decisions of the streaming
subsystem, keeping them out of the ingest hot path:

* **when to expire** -- given the stream watermark ``w`` (the largest event
  end seen) and a window length ``W``, every record with ``end <= w - W``
  has left the window and is retracted via the engine's ``expire_events``;
* **when to compact** -- retraction is incremental but *inexact at the group
  level*: surviving MinSigTree ancestors keep their old (now possibly loose)
  group-level signature minima, which never changes results but gradually
  erodes pruning.  The window counts index-changing retractions and
  relocations and triggers ``engine.compact()`` -- a signature-free tree
  rebuild -- once they reach ``compact_after``.

The policy is deliberately deterministic: cutoffs depend only on the
watermark, never on wall-clock time, so replaying the same event stream
produces the same sequence of index states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.engine import ExpiryReport, TraceQueryEngine
from repro.service.sharded import ShardedEngine

__all__ = ["SlidingWindow", "StreamingEngine", "WindowStats"]

#: Any engine exposing the streaming maintenance surface
#: (``add_records`` / ``expire_events`` / ``compact`` / ``dataset``).
StreamingEngine = Union[TraceQueryEngine, ShardedEngine]


@dataclass
class WindowStats:
    """Cumulative counters of one :class:`SlidingWindow`."""

    #: Number of ``expire_events`` calls that dropped at least one record.
    expiries: int = 0
    #: Presence instances retracted in total.
    expired_records: int = 0
    #: Entities whose whole trace expired (removed from the index).
    entities_removed: int = 0
    #: Surviving entities that were re-signed and relocated.
    entities_resigned: int = 0
    #: Surviving entities whose signature was unchanged (tree untouched).
    entities_unchanged: int = 0
    #: Number of compactions triggered (automatic and explicit).
    compactions: int = 0


class SlidingWindow:
    """Expiry/compaction policy bound to one engine.

    Parameters
    ----------
    engine:
        A built :class:`~repro.core.engine.TraceQueryEngine` or
        :class:`~repro.service.sharded.ShardedEngine`.
    length:
        Window length in base temporal units.  ``None`` (default) disables
        expiry entirely -- the stream grows without bound and
        :meth:`advance` is a no-op.
    compact_after:
        Auto-compact once this many index-*changing* retractions (removed or
        re-signed entities) have accumulated since the last compaction.
        ``0`` (default) never compacts automatically; :meth:`compact` is
        always available explicitly.

    Example
    -------
    >>> from repro import SpatialHierarchy, TraceDataset, TraceQueryEngine
    >>> from repro.streaming import SlidingWindow
    >>> hierarchy = SpatialHierarchy.regular([2, 2])
    >>> dataset = TraceDataset(hierarchy, horizon=100)
    >>> dataset.add_record("old", "u2_0_0", time=1, duration=2)
    >>> dataset.add_record("fresh", "u2_0_0", time=50, duration=2)
    >>> engine = TraceQueryEngine(dataset, num_hashes=16).build()
    >>> window = SlidingWindow(engine, length=10)
    >>> report = window.advance(watermark=52)   # keep only end > 42
    >>> report.removed_entities
    ['old']
    >>> sorted(engine.dataset.entities)
    ['fresh']
    """

    def __init__(
        self,
        engine: StreamingEngine,
        length: Optional[int] = None,
        compact_after: int = 0,
    ) -> None:
        if length is not None and length < 1:
            raise ValueError(f"window length must be >= 1, got {length}")
        if compact_after < 0:
            raise ValueError(f"compact_after must be >= 0, got {compact_after}")
        self.engine = engine
        self.length = length
        self.compact_after = int(compact_after)
        self.stats = WindowStats()
        self._cutoff: Optional[int] = None
        self._churn_since_compaction = 0

    @property
    def cutoff(self) -> Optional[int]:
        """The last applied expiry cutoff (records with ``end <= cutoff`` are
        gone), or ``None`` when nothing has been expired yet."""
        return self._cutoff

    def advance(self, watermark: int) -> Optional[ExpiryReport]:
        """Move the window forward to ``watermark`` and expire what fell out.

        Returns the :class:`~repro.core.engine.ExpiryReport` when an expiry
        ran, or ``None`` when the window is unbounded, the cutoff did not
        move forward, or no record can possibly be affected yet (cutoff
        below the smallest legal event end).  Cutoffs are monotone: a
        watermark that goes backwards never un-expires anything.
        """
        if self.length is None:
            return None
        cutoff = watermark - self.length
        if cutoff < 1:
            return None
        if self._cutoff is not None and cutoff <= self._cutoff:
            return None
        # Commit the cutoff only after the expiry succeeded: committing first
        # would make the monotone-cutoff check above skip this range forever
        # if ``expire_events`` raises, leaving records that can never expire.
        report = self.engine.expire_events(cutoff)
        self._cutoff = cutoff
        if report.expired_records:
            self.stats.expiries += 1
            self.stats.expired_records += report.expired_records
            self.stats.entities_removed += len(report.removed_entities)
            self.stats.entities_resigned += len(report.resigned_entities)
            self.stats.entities_unchanged += len(report.unchanged_entities)
        self._churn_since_compaction += len(report.removed_entities) + len(
            report.resigned_entities
        )
        if self.compact_after and self._churn_since_compaction >= self.compact_after:
            self.compact()
        return report

    def compact(self) -> None:
        """Re-tighten the engine's tree(s) now and reset the churn counter."""
        self.engine.compact()
        self.stats.compactions += 1
        self._churn_since_compaction = 0

    @property
    def churn_since_compaction(self) -> int:
        """Index-changing retractions accumulated since the last compaction."""
        return self._churn_since_compaction

    def restore_state(self, cutoff: Optional[int] = None, churn: int = 0) -> None:
        """Seed cutoff and churn from persisted state (crash recovery).

        Used by :meth:`~repro.streaming.ingestor.EventIngestor.restore_stream_state`
        so a process restarted from a snapshot advances, expires, and
        auto-compacts at exactly the points the original would have.
        Cutoffs stay monotone: a restore can only move the cutoff forward.
        """
        if cutoff is not None and (self._cutoff is None or cutoff > self._cutoff):
            self._cutoff = int(cutoff)
        self._churn_since_compaction = int(churn)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SlidingWindow(length={self.length}, cutoff={self._cutoff}, "
            f"compact_after={self.compact_after}, churn={self._churn_since_compaction})"
        )
