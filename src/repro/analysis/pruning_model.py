"""The analytic pruning-effectiveness model of Section 6.3.

Given the size of the ST-cell universe, the typical number of base ST-cells
per entity, the number of hash functions and the minimal number of shared
cells ``n_c`` an entity needs to beat the expected k-th best association
degree, the model predicts which fraction of MinSigTree leaves can be
discarded:

* Equation 6.12 -- the distribution of one signature coordinate (the minimum
  of ``C`` uniform hashes over ``[0, |S|)``);
* Equation 6.13 -- the distribution of a node's routing-index value (the
  maximum of ``n_h`` signature coordinates);
* Equation 6.14 -- the probability ``q(R[j])`` that at least ``n_c`` of the
  query's cells survive a node whose routing value falls in sub-range
  ``R[j]`` (such a node cannot be discarded);
* Equation 6.15 -- the expected fraction of leaves that cannot be discarded,
  ``sum_j V[j] * q(R[j])``.

The paper plots the complementary quantity (fraction of leaves that *can* be
discarded) in Figure 7.3; both orientations are exposed here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["PruningModelParams", "PruningModel"]


@dataclass(frozen=True)
class PruningModelParams:
    """Inputs of the analytic model.

    Attributes
    ----------
    universe_size:
        ``|S| = n * t``, the number of possible base ST-cells (also the hash
        range).
    cells_per_entity:
        Typical number of base ST-cells per indexed entity (``|seq^m_a|``);
        the average is a good stand-in for the thesis' per-entity value.
    query_cells:
        Number of base ST-cells of the query entity (defaults to
        ``cells_per_entity`` when 0).
    num_hashes:
        Number of hash functions ``n_h``.
    min_shared_cells:
        ``n_c``: the minimal number of base cells an entity must share with
        the query for its association degree to exceed the expected k-th
        best.
    num_ranges:
        ``n_r``: number of equal sub-ranges the hash range is divided into
        when tabulating the routing-value distribution.
    """

    universe_size: int
    cells_per_entity: int
    num_hashes: int
    min_shared_cells: int
    query_cells: int = 0
    num_ranges: int = 64
    #: Optional empirical distribution of per-entity cell counts.  When given,
    #: the routing-value distribution is averaged over it, which matters for
    #: heavy-tailed activity (most pruning comes from low-activity entities
    #: whose signatures are large).  ``cells_per_entity`` is still used for
    #: the query side when ``query_cells`` is 0.
    cells_distribution: tuple = ()

    def __post_init__(self) -> None:
        if self.universe_size < 1:
            raise ValueError("universe_size must be >= 1")
        if self.cells_per_entity < 1:
            raise ValueError("cells_per_entity must be >= 1")
        if self.num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        if self.min_shared_cells < 0:
            raise ValueError("min_shared_cells must be >= 0")
        if self.num_ranges < 2:
            raise ValueError("num_ranges must be >= 2")

    @property
    def effective_query_cells(self) -> int:
        """Query cell count, defaulting to the per-entity cell count."""
        return self.query_cells if self.query_cells > 0 else self.cells_per_entity


class PruningModel:
    """Evaluate the Section 6.3 model for one parameter setting."""

    def __init__(self, params: PruningModelParams) -> None:
        self.params = params

    # ------------------------------------------------------------------
    def signature_value_cdf(self, thresholds: np.ndarray, cells: int | None = None) -> np.ndarray:
        """``P(sig[u] <= x)`` for one coordinate (Equation 6.12 in CDF form).

        One coordinate is the minimum of ``cells`` independent hashes, each
        uniform on ``[0, universe_size)``, so
        ``P(min <= x) = 1 - (1 - (x + 1) / |S|) ** C``.
        """
        universe = float(self.params.universe_size)
        if cells is None:
            cells = self.params.cells_per_entity
        proportion = np.clip((thresholds + 1.0) / universe, 0.0, 1.0)
        return 1.0 - (1.0 - proportion) ** cells

    def routing_value_cdf(self, thresholds: np.ndarray) -> np.ndarray:
        """``P(SIG[r] <= x)`` for the routing-index value (Equation 6.13).

        The routing value is the maximum of the ``n_h`` coordinates, hence
        the per-coordinate CDF raised to the ``n_h``-th power.  When an
        empirical distribution of per-entity cell counts is supplied, the CDF
        is averaged over it (a random leaf belongs to a random entity); with
        heavy-tailed activity this is what makes low-activity entities --
        whose signatures are large -- discardable.  (For interior nodes the
        group minimum lowers the value further; the leaf-level approximation
        matches the paper's ``p(SIG_N[u]=i) ≈ p(sig^m_a[u]=i)``.)
        """
        counts = self.params.cells_distribution or (self.params.cells_per_entity,)
        stacked = np.stack(
            [
                self.signature_value_cdf(thresholds, cells=max(1, int(count)))
                ** self.params.num_hashes
                for count in counts
            ]
        )
        return stacked.mean(axis=0)

    def routing_value_distribution(self) -> np.ndarray:
        """``V[j]``: probability the routing value falls in each sub-range."""
        edges = np.linspace(0, self.params.universe_size - 1, self.params.num_ranges + 1)
        cdf = self.routing_value_cdf(edges)
        distribution = np.diff(cdf)
        total = distribution.sum()
        if total > 0:
            distribution = distribution / total
        return distribution

    def survival_probability(self, range_upper_bounds: np.ndarray) -> np.ndarray:
        """``q(R[j])``: probability a node with that routing value survives (Eq. 6.14).

        A node survives (cannot be discarded) when at least ``n_c`` of the
        query's cells hash *above* the routing value, i.e. stay out of the
        pruned set.
        """
        universe = float(self.params.universe_size)
        query_cells = self.params.effective_query_cells
        min_shared = min(self.params.min_shared_cells, query_cells)
        # Probability one query cell survives a node with routing value x.
        survive = np.clip(1.0 - (range_upper_bounds + 1.0) / universe, 0.0, 1.0)
        # P(at least min_shared of query_cells survive) via the binomial tail.
        counts = np.arange(0, query_cells + 1)
        result = np.zeros_like(survive, dtype=float)
        for index, probability in enumerate(survive):
            pmf = _binomial_pmf(query_cells, probability, counts)
            result[index] = pmf[min_shared:].sum()
        return result

    # ------------------------------------------------------------------
    def expected_checked_fraction(self) -> float:
        """Equation 6.15: expected fraction of leaves that cannot be discarded."""
        edges = np.linspace(0, self.params.universe_size - 1, self.params.num_ranges + 1)
        uppers = edges[1:]
        weights = self.routing_value_distribution()
        survival = self.survival_probability(uppers)
        return float(np.clip((weights * survival).sum(), 0.0, 1.0))

    def expected_pruning_effectiveness(self) -> float:
        """Fraction of leaves expected to be discarded (Figure 7.3 orientation)."""
        return 1.0 - self.expected_checked_fraction()


def _binomial_pmf(trials: int, probability: float, counts: np.ndarray) -> np.ndarray:
    """Binomial PMF computed in log space (no scipy dependency needed)."""
    if probability <= 0.0:
        pmf = np.zeros(len(counts))
        pmf[0] = 1.0
        return pmf
    if probability >= 1.0:
        pmf = np.zeros(len(counts))
        pmf[-1] = 1.0
        return pmf
    from math import lgamma, log

    log_p = log(probability)
    log_q = log(1.0 - probability)
    values: List[float] = []
    for count in counts:
        log_choose = lgamma(trials + 1) - lgamma(count + 1) - lgamma(trials - count + 1)
        values.append(log_choose + count * log_p + (trials - count) * log_q)
    values_array = np.array(values)
    values_array -= values_array.max()
    pmf = np.exp(values_array)
    return pmf / pmf.sum()
