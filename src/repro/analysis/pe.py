"""Measured pruning effectiveness (Definition 5) averaged over query samples."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.query import TopKResult

__all__ = ["PESummary", "measure_pruning_effectiveness"]

Searcher = Callable[[str, int], TopKResult]


@dataclass(frozen=True)
class PESummary:
    """Aggregated pruning statistics over a sample of queries."""

    #: Number of queries executed.
    num_queries: int
    #: Result size the queries asked for.
    k: int
    #: Mean fraction of the population pruned (higher is better).
    mean_pruning_effectiveness: float
    #: Mean fraction of the population whose exact score was computed.
    mean_checked_fraction: float
    #: Mean of the literal Definition 5 quantity ``(|E'| - k) / |E|``.
    mean_definition5_pe: float
    #: Mean number of entities scored per query.
    mean_entities_scored: float
    #: Fraction of queries that terminated early.
    early_termination_rate: float

    def as_row(self) -> dict:
        """Flat dictionary representation for experiment tables."""
        return {
            "queries": self.num_queries,
            "k": self.k,
            "pe": round(self.mean_pruning_effectiveness, 4),
            "checked_fraction": round(self.mean_checked_fraction, 4),
            "definition5_pe": round(self.mean_definition5_pe, 4),
            "entities_scored": round(self.mean_entities_scored, 1),
            "early_termination_rate": round(self.early_termination_rate, 3),
        }


def measure_pruning_effectiveness(
    search: Searcher,
    query_entities: Sequence[str],
    k: int,
    sample_size: Optional[int] = None,
    seed: int = 0,
) -> PESummary:
    """Run top-k queries over a sample of entities and aggregate the statistics.

    Parameters
    ----------
    search:
        Any callable ``(entity, k) -> TopKResult`` -- e.g.
        ``engine.top_k`` or ``baseline.search``.
    query_entities:
        Candidate pool of query entities.
    k:
        Result size requested.
    sample_size:
        Number of queries to draw (without replacement); the full pool is
        used when omitted or larger than the pool.
    seed:
        Seed of the sampling RNG (queries are sampled reproducibly).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    pool: List[str] = list(query_entities)
    if not pool:
        raise ValueError("query_entities must not be empty")
    if sample_size is not None and sample_size < len(pool):
        rng = random.Random(seed)
        pool = rng.sample(pool, sample_size)

    pruning: List[float] = []
    checked: List[float] = []
    definition5: List[float] = []
    scored: List[float] = []
    early = 0
    for entity in pool:
        result = search(entity, k)
        stats = result.stats
        pruning.append(stats.pruning_effectiveness)
        checked.append(stats.checked_fraction)
        definition5.append(stats.definition5_pe)
        scored.append(float(stats.entities_scored))
        early += int(stats.terminated_early)

    count = len(pool)
    return PESummary(
        num_queries=count,
        k=k,
        mean_pruning_effectiveness=sum(pruning) / count,
        mean_checked_fraction=sum(checked) / count,
        mean_definition5_pe=sum(definition5) / count,
        mean_entities_scored=sum(scored) / count,
        early_termination_rate=early / count,
    )
