"""Analysis utilities: the analytic pruning-effectiveness model, measured PE,
and the data-distribution statistics behind Figures 7.1 and 7.2.

* :mod:`~repro.analysis.pruning_model` -- the closed-form pruning
  effectiveness estimate of Section 6.3 (Equations 6.12–6.15).
* :mod:`~repro.analysis.pe` -- measured pruning effectiveness averaged over a
  sample of query entities (Definition 5 and the "fraction pruned"
  orientation used by Figures 7.3 and 7.7).
* :mod:`~repro.analysis.distribution` -- AjPI counts and durations per level
  (Figure 7.1) and the association-degree histogram (Figure 7.2).
"""

from repro.analysis.distribution import (
    adm_histogram,
    ajpi_duration_histogram,
    ajpi_entity_counts,
)
from repro.analysis.pe import PESummary, measure_pruning_effectiveness
from repro.analysis.pruning_model import PruningModel, PruningModelParams

__all__ = [
    "PESummary",
    "PruningModel",
    "PruningModelParams",
    "adm_histogram",
    "ajpi_duration_histogram",
    "ajpi_entity_counts",
    "measure_pruning_effectiveness",
]
