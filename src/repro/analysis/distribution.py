"""Data-distribution statistics: Figures 7.1 and 7.2.

* :func:`ajpi_entity_counts` -- for a query entity, how many other entities
  form at least one AjPI with it at each sp-index level (Figure 7.1 a/b).
* :func:`ajpi_duration_histogram` -- how those entities distribute over total
  AjPI duration buckets, per level (Figure 7.1 c/d).
* :func:`adm_histogram` -- the association-degree histogram between a query
  entity and the rest of the population (Figure 7.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.measures.base import AssociationMeasure, level_overlaps
from repro.traces.adjoint import adjoint_durations_by_level
from repro.traces.dataset import TraceDataset

__all__ = ["ajpi_entity_counts", "ajpi_duration_histogram", "adm_histogram"]


def ajpi_entity_counts(
    dataset: TraceDataset,
    query_entity: str,
    candidates: Optional[Sequence[str]] = None,
) -> Dict[int, int]:
    """Number of entities forming AjPIs with the query at each level.

    An entity forming an AjPI at a fine level is counted at every coarser
    level too (the cumulative reading of Figure 7.1): counts are
    non-increasing from level 1 to level ``m``.
    """
    query_sequence = dataset.cell_sequence(query_entity)
    counts = {level: 0 for level in range(1, dataset.num_levels + 1)}
    pool = dataset.entities if candidates is None else tuple(candidates)
    for entity in pool:
        if entity == query_entity:
            continue
        sequence = dataset.cell_sequence(entity)
        for level in range(dataset.num_levels, 0, -1):
            if query_sequence.at_level(level) & sequence.at_level(level):
                for coarser in range(1, level + 1):
                    counts[coarser] += 1
                break
    return counts


def ajpi_duration_histogram(
    dataset: TraceDataset,
    query_entity: str,
    bucket_edges: Sequence[int] = (0, 25, 50, 75, 100),
    candidates: Optional[Sequence[str]] = None,
) -> Dict[int, List[int]]:
    """Histogram of per-entity total AjPI duration with the query, per level.

    ``bucket_edges`` are the lower edges (in base temporal units) of the
    duration buckets; the last bucket is open-ended.  The paper uses 100-hour
    buckets; the defaults here match laptop-scale horizons.

    Returns
    -------
    dict
        ``{level: [count per bucket]}`` counting entities whose total shared
        duration at that level falls in each bucket (entities with zero
        shared duration are not counted).
    """
    if not bucket_edges or list(bucket_edges) != sorted(bucket_edges):
        raise ValueError("bucket_edges must be a non-empty increasing sequence")
    histogram = {
        level: [0] * len(bucket_edges) for level in range(1, dataset.num_levels + 1)
    }
    query_trace = dataset.trace(query_entity)
    pool = dataset.entities if candidates is None else tuple(candidates)
    for entity in pool:
        if entity == query_entity:
            continue
        durations = adjoint_durations_by_level(
            query_trace, dataset.trace(entity), dataset.hierarchy
        )
        for level, duration in durations.items():
            if duration <= 0:
                continue
            bucket = 0
            for index, edge in enumerate(bucket_edges):
                if duration >= edge:
                    bucket = index
            histogram[level][bucket] += 1
    return histogram


def adm_histogram(
    dataset: TraceDataset,
    query_entity: str,
    measure: AssociationMeasure,
    bucket_width: float = 0.1,
    candidates: Optional[Sequence[str]] = None,
) -> Tuple[List[float], List[int]]:
    """Histogram of association degrees between the query and the population.

    Returns
    -------
    (edges, counts)
        ``edges[i]`` is the lower edge of bucket ``i`` and ``counts[i]`` the
        number of entities whose degree falls in ``[edges[i], edges[i] +
        bucket_width)``; entities with zero degree are not counted, matching
        Figure 7.2 which only shows associated entities.
    """
    if not 0.0 < bucket_width <= 1.0:
        raise ValueError(f"bucket_width must be in (0, 1], got {bucket_width}")
    num_buckets = int(round(1.0 / bucket_width))
    edges = [round(index * bucket_width, 10) for index in range(num_buckets)]
    counts = [0] * num_buckets
    query_sequence = dataset.cell_sequence(query_entity)
    pool = dataset.entities if candidates is None else tuple(candidates)
    for entity in pool:
        if entity == query_entity:
            continue
        degree = measure.score_levels(
            level_overlaps(dataset.cell_sequence(entity), query_sequence)
        )
        if degree <= 0.0:
            continue
        bucket = min(num_buckets - 1, int(degree / bucket_width))
        counts[bucket] += 1
    return edges, counts
