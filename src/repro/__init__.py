"""Top-k queries over digital traces.

A faithful, laptop-scale reproduction of "Top-k Queries over Digital Traces"
(SIGMOD 2019): the MinSigTree index, hierarchical MinHash signatures, generic
association degree measures, a hierarchical individual-mobility model for
synthetic data, baselines, and the full evaluation harness.

Quickstart::

    from repro import SpatialHierarchy, TraceDataset, TraceQueryEngine

    hierarchy = SpatialHierarchy.regular([2, 3, 4])   # 3-level sp-index
    dataset = TraceDataset(hierarchy, horizon=24)
    dataset.add_record("alice", "u3_0_0_0", time=9, duration=2)
    dataset.add_record("bob", "u3_0_0_0", time=9, duration=2)
    engine = TraceQueryEngine(dataset, num_hashes=64).build()
    print(engine.top_k("alice", k=1).entities)
"""

from repro.core.engine import EngineConfig, ExpiryReport, TraceQueryEngine
from repro.core.hashing import HierarchicalHashFamily
from repro.core.join import association_graph, mutual_top_k_pairs, top_k_join
from repro.core.minsigtree import MinSigTree
from repro.core.query import BatchTopKExecutor, BatchTopKResult, TopKResult, TopKSearcher
from repro.core.signatures import SignatureComputer
from repro.service import (
    HashPartitioner,
    QueryResultCache,
    RoundRobinPartitioner,
    ShardedEngine,
)
from repro.measures import (
    AssociationMeasure,
    DiceADM,
    ExampleDiceADM,
    FScoreADM,
    HierarchicalADM,
    JaccardADM,
    OverlapADM,
)
from repro.streaming import (
    EventIngestor,
    SlidingWindow,
    StreamingConfig,
    replay_events,
)
from repro.traces import (
    CellSequence,
    PresenceInstance,
    STCell,
    SpatialHierarchy,
    TraceDataset,
)

__version__ = "0.1.0"

__all__ = [
    "AssociationMeasure",
    "BatchTopKExecutor",
    "BatchTopKResult",
    "CellSequence",
    "DiceADM",
    "EngineConfig",
    "EventIngestor",
    "ExampleDiceADM",
    "ExpiryReport",
    "FScoreADM",
    "HierarchicalADM",
    "HashPartitioner",
    "HierarchicalHashFamily",
    "JaccardADM",
    "MinSigTree",
    "OverlapADM",
    "PresenceInstance",
    "QueryResultCache",
    "RoundRobinPartitioner",
    "STCell",
    "ShardedEngine",
    "SignatureComputer",
    "SlidingWindow",
    "SpatialHierarchy",
    "StreamingConfig",
    "TopKResult",
    "TopKSearcher",
    "TraceDataset",
    "TraceQueryEngine",
    "__version__",
    "association_graph",
    "mutual_top_k_pairs",
    "replay_events",
    "top_k_join",
]
