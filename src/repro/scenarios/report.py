"""Scenario report validation and rendering.

The runner emits one JSON document per invocation (see
:mod:`repro.scenarios.runner` for its construction).  This module owns the
document's contract:

* :data:`REPORT_VERSION` -- bumped whenever the shape changes;
* :func:`validate_report` -- a dependency-free structural validator (the
  CI corpus job rejects a malformed artifact with it, and tests pin the
  shape without needing a jsonschema package);
* :func:`render_html` -- a self-contained, no-JavaScript HTML rendering
  for the uploaded build artifact.

Validation is deliberately strict about the fields consumers read
(summary rollups, per-backend accuracy and latency) and lenient about
informational extras (backend ``stats`` blocks), so backends can add
facts without a version bump.
"""

from __future__ import annotations

import html
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["REPORT_VERSION", "validate_report", "render_html"]

#: Current report document version.
REPORT_VERSION = 1


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def _check(condition: bool, errors: List[str], message: str) -> None:
    if not condition:
        errors.append(message)


def _require_keys(
    mapping: object, keys: Sequence[str], errors: List[str], where: str
) -> bool:
    if not isinstance(mapping, Mapping):
        errors.append(f"{where}: expected an object, got {type(mapping).__name__}")
        return False
    missing = [key for key in keys if key not in mapping]
    if missing:
        errors.append(f"{where}: missing keys {missing}")
        return False
    return True


def _validate_accuracy(accuracy: object, errors: List[str], where: str) -> None:
    if not _require_keys(
        accuracy, ["queries", "exact", "exact_fraction", "mismatches"], errors, where
    ):
        return
    _check(isinstance(accuracy["queries"], int), errors, f"{where}.queries: not an int")
    _check(isinstance(accuracy["exact"], int), errors, f"{where}.exact: not an int")
    _check(
        isinstance(accuracy["exact_fraction"], (int, float)),
        errors,
        f"{where}.exact_fraction: not a number",
    )
    _check(
        isinstance(accuracy["mismatches"], list),
        errors,
        f"{where}.mismatches: not a list",
    )
    if isinstance(accuracy["queries"], int) and isinstance(accuracy["exact"], int):
        _check(
            0 <= accuracy["exact"] <= accuracy["queries"],
            errors,
            f"{where}: exact out of range",
        )


def _validate_latency(latency: object, errors: List[str], where: str) -> None:
    if not _require_keys(
        latency, ["count", "mean_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms"], errors, where
    ):
        return
    _check(isinstance(latency["count"], int), errors, f"{where}.count: not an int")
    for key in ("mean_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms"):
        value = latency[key]
        _check(
            value is None or isinstance(value, (int, float)),
            errors,
            f"{where}.{key}: not a number or null",
        )


def _validate_backend_entry(entry: object, errors: List[str], where: str) -> None:
    if not _require_keys(
        entry, ["backend", "accuracy", "latency", "stats", "passed"], errors, where
    ):
        return
    _check(isinstance(entry["backend"], str), errors, f"{where}.backend: not a string")
    _check(isinstance(entry["passed"], bool), errors, f"{where}.passed: not a bool")
    _check(
        isinstance(entry["stats"], Mapping), errors, f"{where}.stats: not an object"
    )
    _validate_accuracy(entry["accuracy"], errors, f"{where}.accuracy")
    _validate_latency(entry["latency"], errors, f"{where}.latency")


def _validate_scenario_entry(entry: object, errors: List[str], where: str) -> None:
    keys = [
        "name",
        "title",
        "tags",
        "hostile",
        "spec",
        "dataset",
        "queries",
        "backends",
        "passed",
    ]
    if not _require_keys(entry, keys, errors, where):
        return
    _check(isinstance(entry["name"], str), errors, f"{where}.name: not a string")
    _check(isinstance(entry["title"], str), errors, f"{where}.title: not a string")
    _check(isinstance(entry["tags"], list), errors, f"{where}.tags: not a list")
    _check(isinstance(entry["hostile"], bool), errors, f"{where}.hostile: not a bool")
    _check(isinstance(entry["spec"], Mapping), errors, f"{where}.spec: not an object")
    _check(isinstance(entry["passed"], bool), errors, f"{where}.passed: not a bool")
    if _require_keys(
        entry["dataset"],
        ["initial_entities", "final_entities", "churn_events"],
        errors,
        f"{where}.dataset",
    ):
        for key in ("initial_entities", "final_entities", "churn_events"):
            _check(
                isinstance(entry["dataset"][key], int),
                errors,
                f"{where}.dataset.{key}: not an int",
            )
    if _require_keys(entry["queries"], ["count", "k"], errors, f"{where}.queries"):
        _check(
            isinstance(entry["queries"]["count"], int),
            errors,
            f"{where}.queries.count: not an int",
        )
        _check(
            isinstance(entry["queries"]["k"], int), errors, f"{where}.queries.k: not an int"
        )
    backends = entry["backends"]
    if not isinstance(backends, list) or not backends:
        errors.append(f"{where}.backends: expected a non-empty list")
        return
    for index, backend_entry in enumerate(backends):
        _validate_backend_entry(backend_entry, errors, f"{where}.backends[{index}]")


def validate_report(report: object) -> List[str]:
    """Structurally validate a scenario report document.

    Returns the list of problems found -- empty for a valid report.  The
    CI corpus job and the tests treat a non-empty list as failure.
    """
    errors: List[str] = []
    top_keys = ["version", "generated_at", "smoke", "backends", "scenarios", "summary"]
    if not _require_keys(report, top_keys, errors, "report"):
        return errors
    _check(
        report["version"] == REPORT_VERSION,
        errors,
        f"report.version: expected {REPORT_VERSION}, got {report['version']!r}",
    )
    _check(
        isinstance(report["generated_at"], str),
        errors,
        "report.generated_at: not a string",
    )
    _check(isinstance(report["smoke"], bool), errors, "report.smoke: not a bool")
    backends = report["backends"]
    if not isinstance(backends, list) or not all(
        isinstance(name, str) for name in backends
    ):
        errors.append("report.backends: expected a list of strings")
    scenarios = report["scenarios"]
    if not isinstance(scenarios, list) or not scenarios:
        errors.append("report.scenarios: expected a non-empty list")
        return errors
    for index, entry in enumerate(scenarios):
        _validate_scenario_entry(entry, errors, f"report.scenarios[{index}]")
    if _require_keys(
        report["summary"],
        ["scenarios", "scenarios_passed", "queries", "exact", "all_passed"],
        errors,
        "report.summary",
    ):
        summary = report["summary"]
        for key in ("scenarios", "scenarios_passed", "queries", "exact"):
            _check(
                isinstance(summary[key], int),
                errors,
                f"report.summary.{key}: not an int",
            )
        _check(
            isinstance(summary["all_passed"], bool),
            errors,
            "report.summary.all_passed: not a bool",
        )
        if not errors:
            recomputed = all(entry["passed"] for entry in scenarios)
            _check(
                summary["all_passed"] == recomputed,
                errors,
                "report.summary.all_passed disagrees with per-scenario results",
            )
    return errors


# ----------------------------------------------------------------------
# HTML rendering
# ----------------------------------------------------------------------
_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 70rem;
       color: #1a1a1a; }
table { border-collapse: collapse; margin: 0.75rem 0 1.5rem; width: 100%; }
th, td { border: 1px solid #d0d0d0; padding: 0.35rem 0.6rem; text-align: left;
         font-size: 0.9rem; }
th { background: #f2f2f2; }
.pass { color: #1a7f37; font-weight: 600; }
.fail { color: #b42318; font-weight: 600; }
.tag { background: #eef; border-radius: 0.5rem; padding: 0.05rem 0.5rem;
       font-size: 0.8rem; margin-right: 0.25rem; }
.tag.hostile { background: #fde8e8; }
caption { text-align: left; font-weight: 600; padding-bottom: 0.25rem; }
""".strip()


def _format_ms(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.3f}"


def render_html(report: Mapping[str, object]) -> str:
    """Render a validated report as a standalone HTML page (no JavaScript)."""
    summary = report["summary"]
    verdict = "PASS" if summary["all_passed"] else "FAIL"
    verdict_class = "pass" if summary["all_passed"] else "fail"
    parts: List[str] = [
        "<!DOCTYPE html>",
        "<html lang=\"en\"><head><meta charset=\"utf-8\">",
        "<title>Scenario report</title>",
        f"<style>{_STYLE}</style></head><body>",
        "<h1>Scenario corpus report</h1>",
        "<p>"
        f"<span class=\"{verdict_class}\">{verdict}</span> &mdash; "
        f"{summary['scenarios_passed']}/{summary['scenarios']} scenarios, "
        f"{summary['exact']}/{summary['queries']} exact top-k answers; "
        f"generated {html.escape(str(report['generated_at']))}"
        f"{' (smoke mode)' if report['smoke'] else ''}."
        "</p>",
    ]
    for entry in report["scenarios"]:
        status = "pass" if entry["passed"] else "fail"
        tags = "".join(
            f"<span class=\"tag{' hostile' if tag == 'hostile' else ''}\">"
            f"{html.escape(str(tag))}</span>"
            for tag in entry["tags"]
        )
        dataset = entry["dataset"]
        parts.append(
            f"<h2><span class=\"{status}\">{'✓' if entry['passed'] else '✗'}</span> "
            f"{html.escape(str(entry['title']))} "
            f"<code>{html.escape(str(entry['name']))}</code></h2>"
        )
        parts.append(f"<p>{tags}</p>")
        parts.append(
            "<p>"
            f"{dataset['initial_entities']} entities initially, "
            f"{dataset['final_entities']} after {dataset['churn_events']} churn events; "
            f"{entry['queries']['count']} queries at k={entry['queries']['k']}."
            "</p>"
        )
        rows = [
            "<table><caption>Backends</caption>",
            "<tr><th>backend</th><th>exact</th><th>p50 ms</th><th>p95 ms</th>"
            "<th>p99 ms</th><th>max ms</th><th>verdict</th></tr>",
        ]
        for backend_entry in entry["backends"]:
            accuracy = backend_entry["accuracy"]
            latency = backend_entry["latency"]
            backend_status = "pass" if backend_entry["passed"] else "fail"
            rows.append(
                "<tr>"
                f"<td><code>{html.escape(str(backend_entry['backend']))}</code></td>"
                f"<td>{accuracy['exact']}/{accuracy['queries']}</td>"
                f"<td>{_format_ms(latency['p50_ms'])}</td>"
                f"<td>{_format_ms(latency['p95_ms'])}</td>"
                f"<td>{_format_ms(latency['p99_ms'])}</td>"
                f"<td>{_format_ms(latency['max_ms'])}</td>"
                f"<td class=\"{backend_status}\">"
                f"{'ok' if backend_entry['passed'] else 'MISMATCH'}</td>"
                "</tr>"
            )
        rows.append("</table>")
        parts.extend(rows)
        for backend_entry in entry["backends"]:
            mismatches = backend_entry["accuracy"]["mismatches"]
            if not mismatches:
                continue
            parts.append(
                f"<h3>Mismatches on <code>"
                f"{html.escape(str(backend_entry['backend']))}</code></h3><ul>"
            )
            for mismatch in mismatches:
                parts.append(
                    "<li><code>"
                    + html.escape(
                        f"{mismatch['query']}: expected {mismatch['expected']}, "
                        f"got {mismatch['got']}"
                    )
                    + "</code></li>"
                )
            parts.append("</ul>")
    parts.append("</body></html>")
    return "\n".join(parts)
