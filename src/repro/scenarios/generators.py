"""Dataset and churn generators behind the scenario specs.

Two registries map the names a :class:`~repro.scenarios.spec.ScenarioSpec`
uses onto code:

* :data:`DATASET_GENERATORS` -- build the *initial* dataset.  The paper's
  workloads route through the shared experiment configurations
  (:func:`repro.experiments.workloads.syn_config` /
  :func:`~repro.experiments.workloads.wifi_config`), so scenarios and
  figure benchmarks stay on one parameterisation.  The hostile generators
  build engineered failure modes directly: heavy-tailed per-entity trace
  sizes and clone families whose identical cell sets collide in the
  MinHash signature space.
* :data:`CHURN_GENERATORS` -- produce the event stream replayed after the
  initial build, *in submission order* (bursty streams deliberately emit
  late, out-of-timestamp-order events).

Everything is a pure function of its parameters: the same spec always
yields the same dataset and the same event list, which is what lets the
runner score backends against an independently computed ground truth.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Mapping

from repro.experiments.workloads import syn_config, wifi_config
from repro.mobility.hierarchical import generate_synthetic_dataset
from repro.mobility.wifi import generate_wifi_dataset
from repro.traces.dataset import TraceDataset
from repro.traces.events import PresenceInstance
from repro.traces.spatial import SpatialHierarchy

__all__ = [
    "CHURN_GENERATORS",
    "DATASET_GENERATORS",
    "build_dataset",
    "build_churn_events",
]

DatasetGenerator = Callable[..., TraceDataset]
ChurnGenerator = Callable[..., List[PresenceInstance]]


# ----------------------------------------------------------------------
# Dataset generators
# ----------------------------------------------------------------------
def _syn_dataset(**params: object) -> TraceDataset:
    """The paper's SYN workload (hierarchical IM mobility model).

    Parameters overlay the shared ``tiny``-scale experiment configuration,
    pinned explicitly so scenario datasets never depend on the
    ``REPRO_SCALE`` environment variable.
    """
    dataset, _config = generate_synthetic_dataset(syn_config("tiny", **params))
    return dataset


def _wifi_dataset(**params: object) -> TraceDataset:
    """The paper's REAL-substitute workload (WiFi handshake detections)."""
    dataset, _config = generate_wifi_dataset(wifi_config("tiny", **params))
    return dataset


def _heavy_tail_dataset(
    num_entities: int = 200,
    horizon: int = 168,
    branching: tuple = (3, 4, 4),
    alpha: float = 1.1,
    min_records: int = 2,
    max_records: int = 400,
    group_size: int = 4,
    copy_probability: float = 0.7,
    seed: int = 0,
) -> TraceDataset:
    """Heavy-tailed per-entity trace sizes (hostile).

    Entity activity is Pareto-distributed: a few entities carry hundreds of
    presence records while most carry a handful.  The giants stress leaf
    scoring (long sparse intersections) and drag their MinSigTree groups'
    signatures towards universal minima, eroding pruning.  Association
    structure comes from social circles of up to ``group_size`` entities
    sharing anchor slots with probability ``copy_probability``.
    """
    rng = random.Random(seed)
    hierarchy = SpatialHierarchy.regular(list(branching), prefix="ht")
    dataset = TraceDataset(hierarchy, horizon=horizon)
    bases = hierarchy.base_units

    entities = [f"ht-{index}" for index in range(num_entities)]
    # Social circles: consecutive entities grouped, each circle anchored to
    # a handful of shared (unit, time) slots.
    position = 0
    anchors_by_entity: Dict[str, List[tuple]] = {}
    while position < num_entities:
        size = rng.randint(1, group_size)
        members = entities[position : position + size]
        position += size
        anchor_count = rng.randint(2, 5)
        anchors = [
            (rng.choice(bases), rng.randrange(max(1, horizon - 2)))
            for _ in range(anchor_count)
        ]
        for member in members:
            anchors_by_entity[member] = [
                anchor for anchor in anchors if rng.random() < copy_probability
            ]

    for entity in entities:
        pareto = rng.paretovariate(alpha)
        extra = min(max_records, max(min_records, int(min_records * pareto)))
        for unit, start in anchors_by_entity.get(entity, ()):
            dataset.add_record(entity, unit, start, duration=rng.randint(1, 2))
        for _ in range(extra):
            start = rng.randrange(max(1, horizon - 2))
            dataset.add_record(entity, rng.choice(bases), start, duration=rng.randint(1, 3))
    return dataset


def _clone_families_dataset(
    num_families: int = 24,
    family_size: int = 4,
    records_per_prototype: int = 8,
    num_background: int = 60,
    horizon: int = 120,
    branching: tuple = (2, 4, 4),
    distinguish_probability: float = 0.5,
    seed: int = 0,
) -> TraceDataset:
    """Adversarial signature collisions (hostile).

    Families of entities replicate one prototype trace *cell for cell*, so
    every member of a family carries an **identical MinHash signature** --
    the worst case for signature-based grouping: the MinSigTree cannot
    separate them, bounds tie exactly, and top-k boundaries are decided
    purely by the deterministic tie-break.  Half the members (per
    ``distinguish_probability``) add one extra record, producing clusters of
    *almost*-tied scores around each query.
    """
    rng = random.Random(seed)
    hierarchy = SpatialHierarchy.regular(list(branching), prefix="cf")
    dataset = TraceDataset(hierarchy, horizon=horizon)
    bases = hierarchy.base_units

    for family in range(num_families):
        prototype = [
            (rng.choice(bases), rng.randrange(max(1, horizon - 2)), rng.randint(1, 2))
            for _ in range(records_per_prototype)
        ]
        for member in range(family_size):
            entity = f"cf-{family}-{member}"
            for unit, start, duration in prototype:
                dataset.add_record(entity, unit, start, duration=duration)
            if member and rng.random() < distinguish_probability:
                start = rng.randrange(max(1, horizon - 2))
                dataset.add_record(entity, rng.choice(bases), start, duration=1)
    for index in range(num_background):
        entity = f"bg-{index}"
        for _ in range(rng.randint(1, 6)):
            start = rng.randrange(max(1, horizon - 2))
            dataset.add_record(entity, rng.choice(bases), start, duration=rng.randint(1, 2))
    return dataset


#: Named initial-dataset builders a :class:`DatasetProfile` can reference.
DATASET_GENERATORS: Dict[str, DatasetGenerator] = {
    "syn": _syn_dataset,
    "wifi": _wifi_dataset,
    "heavy_tail": _heavy_tail_dataset,
    "clone_families": _clone_families_dataset,
}


def build_dataset(generator: str, params: Mapping[str, object]) -> TraceDataset:
    """Build a fresh initial dataset for one backend (or the oracle).

    Backends mutate their dataset through ingest and expiry, so every
    consumer gets its own instance; determinism of the generators makes
    them identical.
    """
    try:
        factory = DATASET_GENERATORS[generator]
    except KeyError:
        raise ValueError(
            f"unknown dataset generator {generator!r}; "
            f"expected one of {sorted(DATASET_GENERATORS)}"
        ) from None
    return factory(**dict(params))


# ----------------------------------------------------------------------
# Churn generators
# ----------------------------------------------------------------------
def _no_churn(dataset: TraceDataset, **_params: object) -> List[PresenceInstance]:
    """Static scenario: no live updates."""
    return []


def _bursty_late_churn(
    dataset: TraceDataset,
    bursts: int = 6,
    events_per_burst: int = 120,
    burst_start: int = 0,
    burst_spacing: int = 12,
    late_fraction: float = 0.25,
    late_lag: int = 40,
    new_entity_fraction: float = 0.3,
    seed: int = 0,
) -> List[PresenceInstance]:
    """Bursty ingest with late arrivals (hostile).

    Events arrive in ``bursts`` dense waves.  Most carry timestamps near
    the burst; a ``late_fraction`` arrive with timestamps up to
    ``late_lag`` units in the past -- *after* newer events have already
    advanced the stream watermark, so under a sliding window some of them
    are already expired on arrival and must be dropped, not indexed.  A
    ``new_entity_fraction`` of events introduce previously unseen entities
    mid-stream.  The returned list is in submission order, **not**
    timestamp order.
    """
    rng = random.Random(seed)
    bases = dataset.hierarchy.base_units
    existing = list(dataset.entities)
    horizon = dataset.horizon
    events: List[PresenceInstance] = []
    start_floor = burst_start if burst_start > 0 else max(1, horizon // 3)
    for burst in range(bursts):
        burst_time = min(start_floor + burst * burst_spacing, horizon - 3)
        for index in range(events_per_burst):
            if existing and rng.random() >= new_entity_fraction:
                entity = rng.choice(existing)
            else:
                entity = f"burst-{burst}-{index}"
            if rng.random() < late_fraction:
                start = max(0, burst_time - rng.randint(1, late_lag))
            else:
                start = max(0, burst_time + rng.randint(-2, 2))
            duration = rng.randint(1, 3)
            end = min(start + duration, horizon)
            if end <= start:
                start, end = max(0, end - 1), end if end > 0 else 1
            events.append(PresenceInstance(entity, rng.choice(bases), start, end))
    return events


def _rolling_churn(
    dataset: TraceDataset,
    steps: int = 30,
    events_per_step: int = 40,
    start: int = 0,
    stride: int = 4,
    new_entity_fraction: float = 0.2,
    seed: int = 0,
) -> List[PresenceInstance]:
    """Sustained time-marching churn (hostile, pairs with a sliding window).

    Time advances ``stride`` units per step while events keep flowing, so a
    window shorter than the replayed span continually expires history:
    whole entities drop out, survivors are re-signed, and the accumulated
    retractions force ``compact()`` through the churn trigger.
    """
    rng = random.Random(seed)
    bases = dataset.hierarchy.base_units
    existing = list(dataset.entities)
    horizon = dataset.horizon
    events: List[PresenceInstance] = []
    for step in range(steps):
        step_time = min(start + step * stride, horizon - 3)
        for index in range(events_per_step):
            if existing and rng.random() >= new_entity_fraction:
                entity = rng.choice(existing)
            else:
                entity = f"churn-{step}-{index}"
            event_start = max(0, step_time + rng.randint(-1, 2))
            duration = rng.randint(1, 2)
            end = min(event_start + duration, horizon)
            if end <= event_start:
                event_start, end = max(0, end - 1), end if end > 0 else 1
            events.append(PresenceInstance(entity, rng.choice(bases), event_start, end))
    return events


#: Named churn-stream builders a :class:`ChurnProfile` can reference.
CHURN_GENERATORS: Dict[str, ChurnGenerator] = {
    "none": _no_churn,
    "bursty_late": _bursty_late_churn,
    "rolling": _rolling_churn,
}


def build_churn_events(
    generator: str, dataset: TraceDataset, params: Mapping[str, object]
) -> List[PresenceInstance]:
    """Build the deterministic churn event stream for a scenario.

    ``dataset`` must be a *pristine* initial dataset (the generators sample
    entities and base units from it); the returned events are shared by the
    oracle and every backend.
    """
    try:
        factory = CHURN_GENERATORS[generator]
    except KeyError:
        raise ValueError(
            f"unknown churn generator {generator!r}; "
            f"expected one of {sorted(CHURN_GENERATORS)}"
        ) from None
    return factory(dataset, **dict(params))
