"""Declarative scenario specifications.

A :class:`ScenarioSpec` pins everything a replay needs to be reproducible
and *scorable*:

* a **dataset profile** -- a named generator (see
  :mod:`repro.scenarios.generators`) plus its parameters, with a smaller
  parameter overlay for ``--smoke`` runs;
* a **churn profile** -- a named event-stream generator, micro-batch size,
  and the sliding-window/compaction knobs the backends replay it under;
* a **query workload** -- how many query entities to sample (seeded), and
  the result size ``k``;
* an **engine profile** -- the index-shaping knobs every backend builds
  with.  The default ``bound_mode`` is ``per_level`` (the strictly
  admissible bound), because scenarios are *correctness* gates: the exact
  top-k must equal the brute-force oracle on every query.

Specs are plain frozen dataclasses: serialisable via :meth:`to_dict` (the
shape embedded in reports and printed by ``repro scenario list --json``)
and cheap to resolve for smoke or full scale.  Nothing here touches an
engine -- :mod:`repro.scenarios.runner` does the replaying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "ChurnProfile",
    "DatasetProfile",
    "EngineProfile",
    "QueryWorkload",
    "ScenarioSpec",
]


def _merged(base: Mapping[str, object], overlay: Mapping[str, object]) -> Dict[str, object]:
    """``base`` with ``overlay`` applied on top (neither is mutated)."""
    merged = dict(base)
    merged.update(overlay)
    return merged


@dataclass(frozen=True)
class DatasetProfile:
    """Which generator builds the initial dataset, and with what parameters.

    ``generator`` names an entry of
    :data:`repro.scenarios.generators.DATASET_GENERATORS`; ``params`` are
    its keyword arguments; ``smoke_params`` overlay them for ``--smoke``
    runs (typically fewer entities and a shorter horizon).
    """

    generator: str
    params: Mapping[str, object] = field(default_factory=dict)
    smoke_params: Mapping[str, object] = field(default_factory=dict)

    def resolve(self, smoke: bool) -> Dict[str, object]:
        """The effective generator parameters for this run mode."""
        return _merged(self.params, self.smoke_params) if smoke else dict(self.params)


@dataclass(frozen=True)
class ChurnProfile:
    """The live-update stream a scenario replays after the initial build.

    ``generator`` names an entry of
    :data:`repro.scenarios.generators.CHURN_GENERATORS` (``"none"`` for
    static scenarios).  Every backend replays the *same* event list in
    micro-batches of ``batch_size`` events, each batch explicitly flushed,
    under a sliding window of ``window`` base temporal units (``None`` =
    unbounded) with churn-triggered compaction after ``compact_after``
    index-changing retractions (``0`` = never).
    """

    generator: str = "none"
    params: Mapping[str, object] = field(default_factory=dict)
    smoke_params: Mapping[str, object] = field(default_factory=dict)
    batch_size: int = 64
    window: Optional[int] = None
    compact_after: int = 0

    def resolve(self, smoke: bool) -> Dict[str, object]:
        """The effective churn-generator parameters for this run mode."""
        return _merged(self.params, self.smoke_params) if smoke else dict(self.params)


@dataclass(frozen=True)
class QueryWorkload:
    """How query entities are sampled and what each query asks for.

    ``count`` entities are sampled (seeded, reproducible) from the
    *expected final* dataset -- after churn and window expiry -- so every
    query targets an entity that exists on all backends.  ``smoke_count``
    replaces ``count`` under ``--smoke`` when set.
    """

    count: int = 12
    k: int = 10
    seed: int = 7
    smoke_count: Optional[int] = None

    def resolve_count(self, smoke: bool) -> int:
        """The effective number of sampled query entities."""
        if smoke and self.smoke_count is not None:
            return self.smoke_count
        return self.count


@dataclass(frozen=True)
class EngineProfile:
    """The index-shaping knobs every backend builds the scenario's engine with.

    ``bound_mode`` defaults to ``per_level`` -- the strictly admissible
    bound -- because the harness scores *exact* agreement with the
    brute-force oracle; the paper's ``lift`` bound trades a theoretical
    corner case for speed and is ablated in the benchmarks instead.
    """

    num_hashes: int = 48
    seed: int = 0
    bound_mode: str = "per_level"
    u: float = 2.0
    v: float = 2.0


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, replayable, scorable workload."""

    #: Unique identifier (CLI argument, report key).
    name: str
    #: One-line human title.
    title: str
    #: What the scenario covers and why it is in the corpus.
    description: str
    #: Classification tags; ``"paper"`` marks workloads ported from the
    #: paper's applications, ``"hostile"`` marks engineered failure modes.
    tags: Tuple[str, ...]
    dataset: DatasetProfile
    churn: ChurnProfile = field(default_factory=ChurnProfile)
    queries: QueryWorkload = field(default_factory=QueryWorkload)
    engine: EngineProfile = field(default_factory=EngineProfile)

    @property
    def hostile(self) -> bool:
        """Whether this scenario is an engineered failure-mode workload."""
        return "hostile" in self.tags

    def to_dict(self) -> Dict[str, object]:
        """The JSON shape embedded in reports and ``scenario list --json``."""
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "tags": list(self.tags),
            "dataset": {
                "generator": self.dataset.generator,
                "params": dict(self.dataset.params),
                "smoke_params": dict(self.dataset.smoke_params),
            },
            "churn": {
                "generator": self.churn.generator,
                "params": dict(self.churn.params),
                "smoke_params": dict(self.churn.smoke_params),
                "batch_size": self.churn.batch_size,
                "window": self.churn.window,
                "compact_after": self.churn.compact_after,
            },
            "queries": {
                "count": self.queries.count,
                "k": self.queries.k,
                "seed": self.queries.seed,
                "smoke_count": self.queries.smoke_count,
            },
            "engine": {
                "num_hashes": self.engine.num_hashes,
                "seed": self.engine.seed,
                "bound_mode": self.engine.bound_mode,
                "u": self.engine.u,
                "v": self.engine.v,
            },
        }
