"""The bundled scenario corpus.

Seven scenarios ship with the repository: three ported from the paper's
application workloads (the end-to-end examples and figure benchmarks use
the same generator parameterisations) and four **hostile** ones engineered
at known weak points of the MinSigTree design -- signature collisions,
heavy-tailed trace sizes, late arrivals under a sliding window, and
sustained churn that forces compaction.

Every spec keeps ``bound_mode="per_level"`` (the strictly admissible
bound), so a correct implementation must score **100% exact top-k
agreement** with the brute-force oracle on every query of every scenario;
any mismatch is a bug, not noise.

Use :func:`get_scenario` / :func:`iter_scenarios` rather than importing
:data:`SCENARIOS` directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.scenarios.spec import (
    ChurnProfile,
    DatasetProfile,
    EngineProfile,
    QueryWorkload,
    ScenarioSpec,
)

__all__ = ["SCENARIOS", "get_scenario", "iter_scenarios", "scenario_names"]


def _paper_scenarios() -> List[ScenarioSpec]:
    """Workloads ported from the paper's motivating applications."""
    return [
        ScenarioSpec(
            name="im-mobility",
            title="IM mobility model (SYN workload)",
            description=(
                "The paper's synthetic workload: entities follow the "
                "hierarchical IM mobility model with power-law social groups; "
                "associates are group members who copy each other's stays. "
                "Static dataset, no churn."
            ),
            tags=("paper", "static"),
            dataset=DatasetProfile(
                generator="syn",
                params={"seed": 11},
                smoke_params={"num_entities": 60, "horizon": 48},
            ),
            queries=QueryWorkload(count=12, k=10, seed=7, smoke_count=4),
        ),
        ScenarioSpec(
            name="wifi-crime",
            title="WiFi companion detection (crime investigation)",
            description=(
                "The crime-investigation example: WiFi handshake logs where "
                "companion devices mirror a person of interest's detections. "
                "Exact top-k must surface the planted companions."
            ),
            tags=("paper", "static"),
            dataset=DatasetProfile(
                generator="wifi",
                params={"companion_fraction": 0.2, "seed": 42},
                smoke_params={"num_devices": 60, "horizon": 48},
            ),
            queries=QueryWorkload(count=12, k=10, seed=3, smoke_count=4),
        ),
        ScenarioSpec(
            name="marketing-cohorts",
            title="Marketing cohorts (co-location audiences)",
            description=(
                "The marketing example: larger social groups with high "
                "copy probability produce dense co-location cohorts; queries "
                "recover an entity's cohort as its top associates."
            ),
            tags=("paper", "static"),
            dataset=DatasetProfile(
                generator="syn",
                params={
                    "max_group_size": 16,
                    "group_copy_probability": 0.85,
                    "seed": 2024,
                },
                smoke_params={"num_entities": 60, "horizon": 48},
            ),
            queries=QueryWorkload(count=12, k=10, seed=5, smoke_count=4),
        ),
    ]


def _hostile_scenarios() -> List[ScenarioSpec]:
    """Engineered failure-mode workloads."""
    return [
        ScenarioSpec(
            name="heavy-tail",
            title="Heavy-tailed entity sizes",
            description=(
                "Pareto-distributed per-entity activity: a few giant traces "
                "drag group signatures toward universal minima and erode "
                "pruning, while most entities are near-empty. Stresses leaf "
                "scoring and bound tightness at both extremes."
            ),
            tags=("hostile", "static"),
            dataset=DatasetProfile(
                generator="heavy_tail",
                params={"num_entities": 220, "seed": 9},
                smoke_params={"num_entities": 80, "max_records": 120},
            ),
            queries=QueryWorkload(count=12, k=10, seed=17, smoke_count=4),
        ),
        ScenarioSpec(
            name="clone-families",
            title="Adversarial signature collisions",
            description=(
                "Families of entities share cell-for-cell identical traces, "
                "so their MinHash signatures collide exactly and scores tie "
                "in clusters; the top-k boundary is decided purely by the "
                "deterministic tie-break, which every backend must honour."
            ),
            tags=("hostile", "static", "ties"),
            dataset=DatasetProfile(
                generator="clone_families",
                params={"num_families": 24, "seed": 21},
                smoke_params={"num_families": 10, "num_background": 24},
            ),
            queries=QueryWorkload(count=12, k=10, seed=23, smoke_count=4),
        ),
        ScenarioSpec(
            name="bursty-late",
            title="Bursty ingest with late arrivals",
            description=(
                "Dense event bursts under a sliding window, with a quarter "
                "of events arriving out of order up to 40 units late -- some "
                "already expired at arrival and must be dropped rather than "
                "indexed. Exercises watermark/window interaction end to end."
            ),
            tags=("hostile", "streaming"),
            dataset=DatasetProfile(
                generator="syn",
                params={"num_entities": 100, "seed": 31},
                smoke_params={"num_entities": 50, "horizon": 48},
            ),
            churn=ChurnProfile(
                generator="bursty_late",
                params={"bursts": 6, "events_per_burst": 100, "burst_start": 24, "burst_spacing": 8, "seed": 31},
                smoke_params={"bursts": 3, "events_per_burst": 40, "burst_start": 16},
                batch_size=64,
                window=36,
            ),
            queries=QueryWorkload(count=10, k=8, seed=29, smoke_count=4),
        ),
        ScenarioSpec(
            name="churn-compaction",
            title="Sustained churn forcing compaction",
            description=(
                "Time marches forward while events keep flowing, so a short "
                "sliding window continually expires history: entities drop "
                "out entirely, survivors are re-signed, and accumulated "
                "retractions trigger full compaction mid-stream."
            ),
            tags=("hostile", "streaming", "compaction"),
            dataset=DatasetProfile(
                generator="syn",
                params={"num_entities": 100, "seed": 37},
                smoke_params={"num_entities": 50, "horizon": 48},
            ),
            churn=ChurnProfile(
                generator="rolling",
                params={"steps": 12, "events_per_step": 50, "start": 20, "stride": 4, "seed": 37},
                smoke_params={"steps": 6, "events_per_step": 25, "start": 12},
                batch_size=48,
                window=24,
                compact_after=2,
            ),
            queries=QueryWorkload(count=10, k=8, seed=41, smoke_count=4),
        ),
    ]


def _build_corpus() -> Dict[str, ScenarioSpec]:
    corpus: Dict[str, ScenarioSpec] = {}
    for spec in _paper_scenarios() + _hostile_scenarios():
        if spec.name in corpus:  # pragma: no cover - corpus authoring error
            raise ValueError(f"duplicate scenario name {spec.name!r}")
        corpus[spec.name] = spec
    return corpus


#: The bundled corpus, keyed by scenario name.
SCENARIOS: Dict[str, ScenarioSpec] = _build_corpus()


def scenario_names() -> List[str]:
    """Names of all bundled scenarios, in registration order."""
    return list(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up one bundled scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; expected one of {scenario_names()}"
        ) from None


def iter_scenarios(names: Optional[Iterable[str]] = None) -> List[ScenarioSpec]:
    """Resolve ``names`` to specs (all bundled scenarios when ``None``)."""
    if names is None:
        return list(SCENARIOS.values())
    return [get_scenario(name) for name in names]
