"""Replay scenarios against backends and score them.

The runner's contract is simple but strict: for every scenario, every
backend must return **exactly** the brute-force oracle's top-k -- same
entities, same order, same scores (to float tolerance) -- on every query.
Accuracy below 1.0 is a correctness bug somewhere in the index, streaming,
serving, or serialisation stack, never acceptable noise: the bundled specs
all use the strictly admissible ``per_level`` bound (see
:mod:`repro.scenarios.corpus`).

Ground truth is computed *without* replaying the engine machinery, so it
cannot inherit an engine bug.  For a windowed churn scenario the final
retained records are exactly::

    {r in initial + churn : r.end > max(event.end) - window}

because the stream watermark equals the largest submitted event end, flush
drops late events with ``end <= watermark - window`` before they are
indexed, and the sliding window monotonically expires indexed records by
the same predicate -- so the final state is independent of micro-batch
boundaries.  The oracle builds that final dataset directly and scans it
with :class:`~repro.baselines.brute_force.BruteForceTopK` under the
``tie_break="entity"`` total order (the searcher's documented tie-break).

Latency is recorded client-side into the same
:class:`~repro.server.metrics.LatencyHistogram` buckets the serving tier
exports (:data:`repro.obs.trace.LATENCY_BUCKETS`), with percentiles
interpolated by :func:`repro.obs.histogram_percentile` -- so scenario
reports and ``/metrics`` scrapes speak the same latency language.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.brute_force import BruteForceTopK
from repro.experiments.workloads import sample_queries
from repro.measures.adm import HierarchicalADM
from repro.obs import histogram_percentile
from repro.scenarios.backends import DEFAULT_BACKENDS, make_backend
from repro.scenarios.corpus import iter_scenarios
from repro.scenarios.generators import build_churn_events, build_dataset
from repro.scenarios.report import REPORT_VERSION
from repro.scenarios.spec import ScenarioSpec
from repro.server.metrics import LatencyHistogram
from repro.traces.dataset import TraceDataset
from repro.traces.events import PresenceInstance

__all__ = ["GroundTruth", "run_scenario", "run_scenarios"]

#: Relative tolerance for score agreement.  Scores cross one JSON
#: round-trip on the HTTP backends (exact for finite floats) and are
#: otherwise produced by the same arithmetic, so this is generous.
SCORE_RTOL = 1e-9

#: Cap on per-backend mismatch examples embedded in a report.
MAX_MISMATCH_EXAMPLES = 5

Progress = Optional[Callable[[str], None]]


class GroundTruth:
    """The oracle's view of one scenario at one run mode.

    Attributes
    ----------
    events:
        The churn stream (shared verbatim by every backend).
    queries:
        The sampled query entities (drawn from the *final* dataset, so
        every query exists on every backend after replay).
    expected:
        Per-query exact top-k ``(entity, score)`` lists from the
        brute-force scan of the final dataset.
    initial_entities / final_entities:
        Dataset population before churn and after churn + window expiry.
    """

    def __init__(self, spec: ScenarioSpec, smoke: bool) -> None:
        dataset = build_dataset(spec.dataset.generator, spec.dataset.resolve(smoke))
        self.initial_entities = dataset.num_entities
        # Events are derived from the pristine initial dataset (generators
        # sample entities/units from it), *before* the oracle mutates it.
        self.events: List[PresenceInstance] = build_churn_events(
            spec.churn.generator, dataset, spec.churn.resolve(smoke)
        )
        self._final = self._final_dataset(dataset, spec)
        self.final_entities = self._final.num_entities
        count = spec.queries.resolve_count(smoke)
        self.queries: List[str] = sample_queries(
            self._final, count, seed=spec.queries.seed
        )
        measure = HierarchicalADM(
            num_levels=self._final.num_levels, u=spec.engine.u, v=spec.engine.v
        )
        oracle = BruteForceTopK(self._final, measure, tie_break="entity")
        self.expected: Dict[str, List[Tuple[str, float]]] = {
            entity: list(oracle.search(entity, k=spec.queries.k).items)
            for entity in self.queries
        }

    def _final_dataset(self, dataset: TraceDataset, spec: ScenarioSpec) -> TraceDataset:
        """Apply the batching-independent final-state rule in place."""
        for event in self.events:
            dataset.add_record(
                event.entity, event.unit, event.start, duration=event.end - event.start
            )
        if self.events and spec.churn.window is not None:
            watermark = max(event.end for event in self.events)
            cutoff = watermark - spec.churn.window
            if cutoff >= 1:
                dataset.expire_before(cutoff)
        return dataset


def _chunks(
    events: Sequence[PresenceInstance], size: int
) -> List[Sequence[PresenceInstance]]:
    return [events[index : index + size] for index in range(0, len(events), size)]


def _items_match(
    got: Sequence[Tuple[str, float]], expected: Sequence[Tuple[str, float]]
) -> bool:
    """Exact ranked agreement: same entities in order, scores to tolerance."""
    if len(got) != len(expected):
        return False
    for (got_entity, got_score), (want_entity, want_score) in zip(got, expected):
        if got_entity != want_entity:
            return False
        if not math.isclose(got_score, want_score, rel_tol=SCORE_RTOL, abs_tol=1e-12):
            return False
    return True


def _latency_section(histogram: LatencyHistogram) -> Dict[str, object]:
    """The report's latency block, in milliseconds (serving-tier buckets)."""
    counts = histogram.bucket_counts

    def percentile(quantile: float) -> Optional[float]:
        seconds = histogram_percentile(counts, quantile)
        if seconds is None or seconds == float("inf"):
            return None
        return round(seconds * 1000.0, 3)

    return {
        "count": histogram.count,
        "mean_ms": round(histogram.mean_seconds * 1000.0, 3) if histogram.count else None,
        "max_ms": round(histogram.max_seconds * 1000.0, 3) if histogram.count else None,
        "p50_ms": percentile(0.50),
        "p95_ms": percentile(0.95),
        "p99_ms": percentile(0.99),
    }


def _run_backend(
    spec: ScenarioSpec,
    backend_name: str,
    truth: GroundTruth,
    smoke: bool,
) -> Dict[str, object]:
    """Replay one scenario on one backend and score it against the oracle."""
    dataset = build_dataset(spec.dataset.generator, spec.dataset.resolve(smoke))
    backend = make_backend(backend_name)
    histogram = LatencyHistogram()
    mismatches: List[Dict[str, object]] = []
    exact = 0
    try:
        backend.start(dataset, spec.engine, spec.churn)
        for chunk in _chunks(truth.events, spec.churn.batch_size):
            backend.ingest(chunk)
        for entity in truth.queries:
            started = time.perf_counter()
            got = backend.query(entity, spec.queries.k)
            histogram.observe(time.perf_counter() - started)
            expected = truth.expected[entity]
            if _items_match(got, expected):
                exact += 1
            elif len(mismatches) < MAX_MISMATCH_EXAMPLES:
                mismatches.append(
                    {
                        "query": entity,
                        "expected": [[e, s] for e, s in expected],
                        "got": [[e, s] for e, s in got],
                    }
                )
        stats = backend.stats()
    finally:
        backend.close()

    total = len(truth.queries)
    return {
        "backend": backend_name,
        "accuracy": {
            "queries": total,
            "exact": exact,
            "exact_fraction": (exact / total) if total else 1.0,
            "mismatches": mismatches,
        },
        "latency": _latency_section(histogram),
        "stats": stats,
        "passed": exact == total,
    }


def run_scenario(
    spec: ScenarioSpec,
    backends: Sequence[str],
    smoke: bool = False,
    progress: Progress = None,
) -> Dict[str, object]:
    """Run one scenario on every requested backend; returns its report entry."""
    emit = progress or (lambda message: None)
    emit(f"scenario {spec.name}: computing ground truth")
    truth = GroundTruth(spec, smoke)
    emit(
        f"scenario {spec.name}: {truth.final_entities} entities, "
        f"{len(truth.events)} churn events, {len(truth.queries)} queries"
    )
    backend_entries: List[Dict[str, object]] = []
    for backend_name in backends:
        emit(f"scenario {spec.name}: replaying on {backend_name}")
        entry = _run_backend(spec, backend_name, truth, smoke)
        accuracy = entry["accuracy"]
        emit(
            f"scenario {spec.name}: {backend_name} "
            f"{accuracy['exact']}/{accuracy['queries']} exact"
        )
        backend_entries.append(entry)
    return {
        "name": spec.name,
        "title": spec.title,
        "tags": list(spec.tags),
        "hostile": spec.hostile,
        "spec": spec.to_dict(),
        "dataset": {
            "initial_entities": truth.initial_entities,
            "final_entities": truth.final_entities,
            "churn_events": len(truth.events),
        },
        "queries": {"count": len(truth.queries), "k": spec.queries.k},
        "backends": backend_entries,
        "passed": all(entry["passed"] for entry in backend_entries),
    }


def run_scenarios(
    names: Optional[Sequence[str]] = None,
    backends: Optional[Sequence[str]] = None,
    smoke: bool = False,
    progress: Progress = None,
) -> Dict[str, object]:
    """Run a scenario selection and assemble the full report document.

    ``names=None`` runs the whole bundled corpus; ``backends=None`` uses
    :data:`~repro.scenarios.backends.DEFAULT_BACKENDS`.  The returned
    document validates against
    :func:`repro.scenarios.report.validate_report`.
    """
    specs = iter_scenarios(names)
    backend_names = list(backends) if backends else list(DEFAULT_BACKENDS)
    scenario_entries = [
        run_scenario(spec, backend_names, smoke=smoke, progress=progress)
        for spec in specs
    ]
    total_queries = 0
    total_exact = 0
    for entry in scenario_entries:
        for backend_entry in entry["backends"]:
            total_queries += backend_entry["accuracy"]["queries"]
            total_exact += backend_entry["accuracy"]["exact"]
    return {
        "version": REPORT_VERSION,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "smoke": smoke,
        "backends": backend_names,
        "scenarios": scenario_entries,
        "summary": {
            "scenarios": len(scenario_entries),
            "scenarios_passed": sum(1 for entry in scenario_entries if entry["passed"]),
            "queries": total_queries,
            "exact": total_exact,
            "all_passed": all(entry["passed"] for entry in scenario_entries),
        },
    }
