"""End-to-end scenario harness: declarative workloads, replay, scoring.

The scenario harness turns the repository's correctness story into a
single gate: a **scenario** (:class:`~repro.scenarios.spec.ScenarioSpec`)
declares a dataset generator, a churn stream, a query workload, and the
engine knobs; the **runner** (:func:`run_scenarios`) replays it against
any deployment shape -- the in-process engine, the sharded service, or a
live HTTP daemon with query worker processes -- and scores every answer
against a brute-force oracle computed independently of the engine
machinery.  The bundled corpus (:data:`SCENARIOS`) mixes workloads ported
from the paper's applications with hostile ones engineered at the
design's weak points; all of them must score 100% exact top-k agreement.

``repro scenario list|run|report`` is the CLI surface; reports are JSON
documents checked by :func:`validate_report` and renderable to HTML with
:func:`render_html`.
"""

from repro.scenarios.backends import (
    BACKENDS,
    DEFAULT_BACKENDS,
    ScenarioBackend,
    make_backend,
)
from repro.scenarios.corpus import SCENARIOS, get_scenario, iter_scenarios, scenario_names
from repro.scenarios.generators import (
    CHURN_GENERATORS,
    DATASET_GENERATORS,
    build_churn_events,
    build_dataset,
)
from repro.scenarios.report import REPORT_VERSION, render_html, validate_report
from repro.scenarios.runner import GroundTruth, run_scenario, run_scenarios
from repro.scenarios.spec import (
    ChurnProfile,
    DatasetProfile,
    EngineProfile,
    QueryWorkload,
    ScenarioSpec,
)

__all__ = [
    "BACKENDS",
    "CHURN_GENERATORS",
    "ChurnProfile",
    "DATASET_GENERATORS",
    "DEFAULT_BACKENDS",
    "DatasetProfile",
    "EngineProfile",
    "GroundTruth",
    "QueryWorkload",
    "REPORT_VERSION",
    "SCENARIOS",
    "ScenarioBackend",
    "ScenarioSpec",
    "build_churn_events",
    "build_dataset",
    "get_scenario",
    "iter_scenarios",
    "make_backend",
    "render_html",
    "run_scenario",
    "run_scenarios",
    "scenario_names",
    "validate_report",
]
