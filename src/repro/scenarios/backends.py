"""Backend adapters the scenario runner replays against.

Each adapter wraps one deployment shape of the same engine behind a tiny
uniform surface -- ``start`` (build the index over the initial dataset),
``ingest`` (replay one churn micro-batch, flushed), ``query`` (one top-k
lookup returning ``(entity, score)`` pairs), ``close`` -- so the runner
can score every deployment against the same brute-force ground truth:

* ``in_process`` -- a :class:`~repro.core.engine.TraceQueryEngine` driven
  directly, churn through an :class:`~repro.streaming.EventIngestor`;
* ``sharded`` -- a two-shard :class:`~repro.service.sharded.ShardedEngine`
  behind the same ingestor;
* ``http`` -- a real :class:`~repro.server.app.TraceServer` behind a live
  ``ThreadingHTTPServer`` on an ephemeral port, exercised over actual HTTP
  (``POST /v1/topk`` / ``POST /v1/events``);
* ``http_workers`` -- the multi-process tier: a
  :class:`~repro.server.frontend.FrontendServer` with two query worker
  processes over mmap'd snapshot generations, behind the same HTTP surface;
* ``cluster`` -- the chaos backend: the distributed tier
  (:class:`~repro.cluster.frontend.ClusterServer`, 2 shard groups x 2
  shard-server replicas) behind HTTP, with one replica per group
  SIGKILLed mid-scenario -- exactness under faults, scored by the same
  oracle.

The HTTP adapters go through real sockets and JSON on purpose: scenario
accuracy then covers serialisation, routing, the coalescer, and (for
``http_workers``) generation publishing -- not just the engine.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.engine import TraceQueryEngine
from repro.measures.adm import HierarchicalADM
from repro.scenarios.spec import ChurnProfile, EngineProfile
from repro.server.httpclient import HttpClientError, JsonHttpClient
from repro.service.sharded import ShardedEngine
from repro.streaming.ingestor import EventIngestor, StreamingConfig
from repro.traces.dataset import TraceDataset
from repro.traces.events import PresenceInstance

__all__ = [
    "BACKENDS",
    "ClusterBackend",
    "DEFAULT_BACKENDS",
    "HttpBackend",
    "InProcessBackend",
    "ScenarioBackend",
    "ShardedBackend",
    "make_backend",
]

TopKItems = List[Tuple[str, float]]


def _measure_for(dataset: TraceDataset, engine: EngineProfile) -> HierarchicalADM:
    """The scenario's association measure over this dataset's hierarchy."""
    return HierarchicalADM(num_levels=dataset.num_levels, u=engine.u, v=engine.v)


def _streaming_config(churn: ChurnProfile) -> StreamingConfig:
    """The ingest configuration every backend replays churn under."""
    return StreamingConfig(
        max_batch_events=churn.batch_size,
        window=churn.window,
        compact_after=churn.compact_after,
    )


class ScenarioBackend:
    """Base adapter: build, replay churn, answer queries, tear down.

    Subclasses implement :meth:`start`, :meth:`query`, and (for deployments
    owning external resources) :meth:`close`; the ingestor-based default of
    :meth:`ingest` covers the in-process adapters.
    """

    #: Registry key and report label.
    name = "abstract"

    def __init__(self) -> None:
        self._ingestor: Optional[EventIngestor] = None

    def start(
        self,
        dataset: TraceDataset,
        engine: EngineProfile,
        churn: ChurnProfile,
    ) -> None:
        """Build the deployment over a fresh copy of the initial dataset."""
        raise NotImplementedError

    def ingest(self, chunk: Sequence[PresenceInstance]) -> None:
        """Replay one churn micro-batch and flush it into the index."""
        assert self._ingestor is not None, "start() must run before ingest()"
        self._ingestor.extend(chunk)
        self._ingestor.flush()

    def query(self, entity: str, k: int) -> TopKItems:
        """One top-k lookup, returning ``(entity, score)`` pairs in rank order."""
        raise NotImplementedError

    def stats(self) -> Dict[str, object]:
        """Optional backend-shape facts for the report (may be empty)."""
        return {}

    def close(self) -> None:
        """Release any resources the deployment owns."""
        if self._ingestor is not None:
            self._ingestor.close()
            self._ingestor = None


class InProcessBackend(ScenarioBackend):
    """The engine driven directly -- the library-embedding deployment."""

    name = "in_process"

    def __init__(self) -> None:
        super().__init__()
        self.engine: Optional[TraceQueryEngine] = None

    def start(
        self,
        dataset: TraceDataset,
        engine: EngineProfile,
        churn: ChurnProfile,
    ) -> None:
        """Build the engine and attach the windowed ingestor."""
        self.engine = TraceQueryEngine(
            dataset,
            _measure_for(dataset, engine),
            num_hashes=engine.num_hashes,
            seed=engine.seed,
            bound_mode=engine.bound_mode,
        ).build()
        self._ingestor = EventIngestor(self.engine, config=_streaming_config(churn))

    def query(self, entity: str, k: int) -> TopKItems:
        """Direct ``top_k`` call on the engine."""
        assert self.engine is not None
        return list(self.engine.top_k(entity, k=k).items)

    def stats(self) -> Dict[str, object]:
        """Deployment shape facts for the report."""
        assert self.engine is not None
        return {"deployment": "in_process", "num_entities": self.engine.dataset.num_entities}


class ShardedBackend(ScenarioBackend):
    """A two-shard :class:`ShardedEngine` behind the same ingest surface."""

    name = "sharded"

    def __init__(self, num_shards: int = 2) -> None:
        super().__init__()
        self.num_shards = num_shards
        self.engine: Optional[ShardedEngine] = None

    def start(
        self,
        dataset: TraceDataset,
        engine: EngineProfile,
        churn: ChurnProfile,
    ) -> None:
        """Build the sharded fleet and attach the windowed ingestor."""
        self.engine = ShardedEngine(
            dataset,
            _measure_for(dataset, engine),
            num_shards=self.num_shards,
            num_hashes=engine.num_hashes,
            seed=engine.seed,
            bound_mode=engine.bound_mode,
        ).build()
        self._ingestor = EventIngestor(self.engine, config=_streaming_config(churn))

    def query(self, entity: str, k: int) -> TopKItems:
        """Fan-out ``top_k`` over the shards, merged by the fleet."""
        assert self.engine is not None
        return list(self.engine.top_k(entity, k=k).items)

    def stats(self) -> Dict[str, object]:
        """Deployment shape facts for the report."""
        assert self.engine is not None
        return {"deployment": "sharded", "num_shards": self.engine.num_shards}


class HttpBackend(ScenarioBackend):
    """A live HTTP daemon on an ephemeral port, exercised over real sockets.

    ``workers=0`` runs the single-process :class:`TraceServer`;
    ``workers>=1`` runs the multi-process
    :class:`~repro.server.frontend.FrontendServer` tier (N query worker
    processes over mmap'd snapshot generations).  Either way, ingest and
    queries travel as JSON over HTTP -- the adapter is an honest client.
    """

    name = "http"

    def __init__(
        self,
        workers: int = 0,
        connect_timeout: float = 10.0,
        read_timeout: float = 60.0,
    ) -> None:
        super().__init__()
        self.workers = workers
        if workers:
            self.name = "http_workers"
        #: Client discipline (see :class:`~repro.server.httpclient.JsonHttpClient`):
        #: explicit connect/read budgets plus one retry on a reset connection.
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self._trace_server = None
        self._httpd = None
        self._thread: Optional[threading.Thread] = None
        self._address: Optional[Tuple[str, int]] = None

    def start(
        self,
        dataset: TraceDataset,
        engine: EngineProfile,
        churn: ChurnProfile,
    ) -> None:
        """Build the daemon and bind it to an ephemeral localhost port."""
        from repro.server.app import TraceServer, build_http_server

        built = TraceQueryEngine(
            dataset,
            _measure_for(dataset, engine),
            num_hashes=engine.num_hashes,
            seed=engine.seed,
            bound_mode=engine.bound_mode,
        ).build()
        if self.workers:
            from repro.server.frontend import FrontendServer

            self._trace_server = FrontendServer(
                built, streaming=_streaming_config(churn), workers=self.workers
            )
        else:
            self._trace_server = TraceServer(built, streaming=_streaming_config(churn))
        self._httpd = build_http_server(self._trace_server, host="127.0.0.1", port=0)
        self._address = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name=f"scenario-{self.name}", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # HTTP client plumbing
    # ------------------------------------------------------------------
    def _post(self, path: str, payload: Dict[str, object]) -> Dict[str, object]:
        assert self._address is not None, "start() must run before requests"
        host, port = self._address
        client = JsonHttpClient(
            host,
            port,
            connect_timeout=self.connect_timeout,
            read_timeout=self.read_timeout,
        )
        try:
            return client.post_json(path, payload)
        except HttpClientError as exc:
            raise RuntimeError(f"{self.name} backend: POST {path} failed: {exc}") from exc

    def ingest(self, chunk: Sequence[PresenceInstance]) -> None:
        """``POST /v1/events`` with an explicit flush."""
        events = [
            {"entity": e.entity, "unit": e.unit, "start": e.start, "end": e.end}
            for e in chunk
        ]
        self._post("/v1/events", {"events": events, "flush": True})

    def query(self, entity: str, k: int) -> TopKItems:
        """``POST /v1/topk`` (single form), decoded from the JSON body."""
        payload = self._post("/v1/topk", {"entity": entity, "k": k})
        return [(item["entity"], item["score"]) for item in payload["results"]]

    def stats(self) -> Dict[str, object]:
        """Deployment shape facts, including the published generation."""
        deployment = "http_workers" if self.workers else "http"
        facts: Dict[str, object] = {"deployment": deployment, "workers": self.workers}
        if self._trace_server is not None:
            generation = getattr(getattr(self._trace_server, "store", None), "generation", None)
            if generation is not None:
                facts["generation"] = generation
        return facts

    def close(self) -> None:
        """Stop the HTTP loop, then the daemon (workers, stores, ingestor)."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
        if self._trace_server is not None:
            self._trace_server.close()
            self._trace_server = None
        self._address = None


class ClusterBackend(HttpBackend):
    """The distributed tier under fault injection -- the chaos backend.

    A 2-shard x 2-replica :class:`~repro.cluster.frontend.ClusterServer`
    (real shard-server subprocesses, consistent-hash partitioning) behind
    the same HTTP surface.  After the first churn micro-batch one replica
    per group is SIGKILLed mid-scenario; the supervisor respawns it with
    catch-up verification while queries keep flowing.  The runner's
    oracle scoring therefore asserts the distributed tier's core claim:
    crashes with a surviving replica never change an answer.
    """

    name = "cluster"

    def __init__(
        self,
        num_shards: int = 2,
        replication: int = 2,
        chaos: bool = True,
        connect_timeout: float = 10.0,
        read_timeout: float = 60.0,
    ) -> None:
        super().__init__(
            workers=0, connect_timeout=connect_timeout, read_timeout=read_timeout
        )
        self.name = "cluster"
        self.num_shards = num_shards
        self.replication = replication
        self.chaos = chaos
        self._chunks_ingested = 0
        self._killed: List[str] = []

    def start(
        self,
        dataset: TraceDataset,
        engine: EngineProfile,
        churn: ChurnProfile,
    ) -> None:
        """Build the cluster fleet and bind the HTTP front door."""
        from repro.cluster.frontend import ClusterServer
        from repro.server.app import build_http_server

        built = ShardedEngine(
            dataset,
            _measure_for(dataset, engine),
            num_shards=self.num_shards,
            partitioner="consistent_hash",
            num_hashes=engine.num_hashes,
            seed=engine.seed,
            bound_mode=engine.bound_mode,
        ).build()
        self._trace_server = ClusterServer(
            built,
            streaming=_streaming_config(churn),
            replication=self.replication,
        )
        self._httpd = build_http_server(self._trace_server, host="127.0.0.1", port=0)
        self._address = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name=f"scenario-{self.name}", daemon=True
        )
        self._thread.start()

    def ingest(self, chunk: Sequence[PresenceInstance]) -> None:
        """Replay churn over HTTP; inject the crash after the first chunk."""
        super().ingest(chunk)
        self._chunks_ingested += 1
        if self.chaos and self._chunks_ingested == 1 and self.replication > 1:
            from repro.cluster.chaos import ChaosController

            self._killed = ChaosController(self._trace_server).kill_one_per_group()

    def stats(self) -> Dict[str, object]:
        """Deployment shape plus the faults injected and recovery counters."""
        facts: Dict[str, object] = {
            "deployment": "cluster",
            "num_shards": self.num_shards,
            "replication": self.replication,
            "replicas_killed": list(self._killed),
        }
        if self._trace_server is not None:
            supervisor = self._trace_server.supervisor.snapshot()
            coordinator = self._trace_server.coordinator.snapshot()
            facts["respawns"] = sum(supervisor["respawns"].values())
            facts["degraded_queries"] = coordinator["counters"]["degraded_queries"]
        return facts


#: Named backend factories the runner and CLI resolve against.
BACKENDS: Dict[str, Callable[[], ScenarioBackend]] = {
    "in_process": InProcessBackend,
    "sharded": ShardedBackend,
    "http": HttpBackend,
    "http_workers": lambda: HttpBackend(workers=2),
    "cluster": ClusterBackend,
}

#: The set ``repro scenario run`` exercises when ``--backends`` is omitted:
#: one of each layer (library embedding, sharded service, multi-process HTTP).
DEFAULT_BACKENDS: Tuple[str, ...] = ("in_process", "sharded", "http_workers")


def make_backend(name: str) -> ScenarioBackend:
    """Instantiate one backend adapter by registry name."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {sorted(BACKENDS)}"
        ) from None
    return factory()
