"""The abstract association degree measure contract.

An association degree measure scores a pair of entities from their ST-cell
set sequences.  Section 3.2 of the paper only demands three generic
properties, which every concrete measure in this package satisfies and which
the property-based tests verify:

* **Normalisation** -- scores lie in ``[0, 1]``.
* **Monotonicity** -- shrinking one entity's trace to a subset of the overlap
  can only increase the score (fewer "wasted" presences), and growing the
  overlap while activity stays fixed can only increase it.
* **Upper-bound admissibility** -- for a query ``q`` and any candidate ``p``,
  the score of ``q`` against the *restriction of q to any superset of the
  overlap with p* bounds the true score from above (this is what Theorem 4
  exploits; see :meth:`AssociationMeasure.score`).

Scores are computed per sp-index level on the sizes of the per-level cell
sets and their intersections, which correspond to the durations ``|P^l_ab|``
of the paper because each base-level ST-cell accounts for exactly one base
temporal unit of co-presence.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.traces.events import CellSequence

__all__ = ["AssociationMeasure", "level_overlaps", "tabulated_bound_kernel"]


def tabulated_bound_kernel(
    query_sizes: Sequence[int],
    num_levels: int,
    entry: Callable[[int, int, int], float],
    normaliser: Optional[float] = None,
) -> Callable[["np.ndarray"], "np.ndarray"]:
    """Build per-level bound tables plus their gather closure.

    The shared machinery behind every measure's
    :meth:`AssociationMeasure.bound_batch_kernel` override:
    ``entry(level_index, surviving, query_size)`` computes one table value
    with the *scalar* path's exact arithmetic, index 0 stays an exact 0.0
    (the scalar loops contribute nothing for zero-overlap levels), and the
    returned kernel is ``num_levels`` table gathers accumulated in level
    order, divided by ``normaliser`` at the end when one is given --
    preserving the scalar paths' operation order bit for bit.
    """
    if len(query_sizes) != num_levels:
        raise ValueError(f"expected {num_levels} query sizes, got {len(query_sizes)}")
    tables = []
    for level_index, query_size in enumerate(query_sizes):
        query_size = int(query_size)
        table = np.zeros(query_size + 1, dtype=np.float64)
        for surviving in range(1, query_size + 1):
            table[surviving] = entry(level_index, surviving, query_size)
        tables.append(table)

    def kernel(survivors: np.ndarray) -> np.ndarray:
        total = np.zeros(survivors.shape[0], dtype=np.float64)
        for level_index, table in enumerate(tables):
            total += table[survivors[:, level_index]]
        return total if normaliser is None else total / normaliser

    return kernel


def level_overlaps(seq_a: CellSequence, seq_b: CellSequence) -> List[Tuple[int, int, int]]:
    """Per-level ``(|A_l|, |B_l|, |A_l ∩ B_l|)`` triples for two sequences.

    The list is ordered from level 1 (coarsest) to level ``m`` (base units).

    Raises
    ------
    ValueError
        If the two sequences were built over sp-indexes of different depth.
    """
    if seq_a.num_levels != seq_b.num_levels:
        raise ValueError(
            f"cell sequences have different depths: {seq_a.num_levels} vs {seq_b.num_levels}"
        )
    triples: List[Tuple[int, int, int]] = []
    for level_a, level_b in zip(seq_a.levels, seq_b.levels):
        # Intersect from the smaller side; sets of namedtuples hash cheaply.
        smaller, larger = (level_a, level_b) if len(level_a) <= len(level_b) else (level_b, level_a)
        shared = sum(1 for cell in smaller if cell in larger)
        triples.append((len(level_a), len(level_b), shared))
    return triples


class AssociationMeasure(abc.ABC):
    """Base class for association degree measures.

    Concrete measures implement :meth:`score_levels`, which receives the
    per-level set sizes and overlap counts; :meth:`score` adapts it to a pair
    of :class:`~repro.traces.events.CellSequence` objects.
    """

    #: Human-readable name used in experiment tables.
    name: str = "adm"

    @abc.abstractmethod
    def score_levels(self, overlaps: List[Tuple[int, int, int]]) -> float:
        """Score a pair of entities from per-level ``(|A|, |B|, |A ∩ B|)`` triples.

        Implementations must return a value in ``[0, 1]`` and must be
        non-decreasing in every intersection size and non-increasing in the
        individual set sizes (for a fixed intersection).
        """

    def score_levels_batch(
        self,
        sizes_a: np.ndarray,
        sizes_b: np.ndarray,
        shared: np.ndarray,
    ) -> np.ndarray:
        """Score many pairs at once from stacked per-level overlap arrays.

        ``sizes_a``, ``sizes_b``, and ``shared`` all have shape
        ``(n_pairs, num_levels)``; row ``i`` holds the per-level
        ``(|A_l|, |B_l|, |A_l ∩ B_l|)`` triples of one pair, exactly as
        :meth:`score_levels` would receive them.  Returns the raw (unclamped)
        scores as a float64 vector of length ``n_pairs``.

        The contract -- relied on by the columnar query kernel for its
        bitwise-equivalence guarantee -- is that every returned value is
        **bit-identical** to the scalar ``score_levels`` applied to the same
        row.  The base implementation guarantees this trivially by looping;
        concrete measures override it with vectorised kernels that preserve
        the scalar path's exact operation order (and route any
        transcendental, such as ``HierarchicalADM``'s duration exponent,
        through the same libm call the scalar path uses).
        """
        sizes_a = np.asarray(sizes_a)
        sizes_b = np.asarray(sizes_b)
        shared = np.asarray(shared)
        out = np.empty(sizes_a.shape[0], dtype=np.float64)
        for row in range(sizes_a.shape[0]):
            out[row] = self.score_levels(
                [
                    (int(sizes_a[row, level]), int(sizes_b[row, level]), int(shared[row, level]))
                    for level in range(sizes_a.shape[1])
                ]
            )
        return out

    def bound_batch_kernel(
        self, query_sizes: Sequence[int]
    ) -> Callable[[np.ndarray], np.ndarray]:
        """A fast evaluator for Theorem 4 bound scores at fixed query sizes.

        The search bounds a node by scoring the *artificial entity* against
        the query, whose per-level overlap triples always have the shape
        ``(s_l, |Q_l|, s_l)`` with ``0 <= s_l <= |Q_l|`` -- one free integer
        per level.  The returned callable maps a ``(n_nodes, m)`` survivor
        -count matrix to the raw scores, bit-identical to ``score_levels``
        row by row.

        The base implementation simply routes through
        :meth:`score_levels_batch`; measures whose levels contribute
        independently (every measure in this package) override it with a
        per-level lookup table -- ``|Q_l| + 1`` scalar evaluations at query
        time buy O(1) numpy ops per bound batch, which is what makes the
        columnar traversal's bound evaluation cheap.
        """
        sizes = np.asarray(query_sizes, dtype=np.int64)

        def kernel(survivors: np.ndarray) -> np.ndarray:
            sizes_b = np.broadcast_to(sizes, survivors.shape)
            return self.score_levels_batch(survivors, sizes_b, survivors)

        return kernel

    def score(self, seq_a: CellSequence, seq_b: CellSequence) -> float:
        """Association degree between two entities' ST-cell set sequences."""
        if seq_a.is_empty() or seq_b.is_empty():
            return 0.0
        value = self.score_levels(level_overlaps(seq_a, seq_b))
        # Guard against floating point drift outside the contract range.
        if value < 0.0:
            return 0.0
        if value > 1.0:
            return 1.0
        return value

    def __call__(self, seq_a: CellSequence, seq_b: CellSequence) -> float:
        return self.score(seq_a, seq_b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
