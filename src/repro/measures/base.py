"""The abstract association degree measure contract.

An association degree measure scores a pair of entities from their ST-cell
set sequences.  Section 3.2 of the paper only demands three generic
properties, which every concrete measure in this package satisfies and which
the property-based tests verify:

* **Normalisation** -- scores lie in ``[0, 1]``.
* **Monotonicity** -- shrinking one entity's trace to a subset of the overlap
  can only increase the score (fewer "wasted" presences), and growing the
  overlap while activity stays fixed can only increase it.
* **Upper-bound admissibility** -- for a query ``q`` and any candidate ``p``,
  the score of ``q`` against the *restriction of q to any superset of the
  overlap with p* bounds the true score from above (this is what Theorem 4
  exploits; see :meth:`AssociationMeasure.score`).

Scores are computed per sp-index level on the sizes of the per-level cell
sets and their intersections, which correspond to the durations ``|P^l_ab|``
of the paper because each base-level ST-cell accounts for exactly one base
temporal unit of co-presence.
"""

from __future__ import annotations

import abc
from typing import List, Tuple

from repro.traces.events import CellSequence

__all__ = ["AssociationMeasure", "level_overlaps"]


def level_overlaps(seq_a: CellSequence, seq_b: CellSequence) -> List[Tuple[int, int, int]]:
    """Per-level ``(|A_l|, |B_l|, |A_l ∩ B_l|)`` triples for two sequences.

    The list is ordered from level 1 (coarsest) to level ``m`` (base units).

    Raises
    ------
    ValueError
        If the two sequences were built over sp-indexes of different depth.
    """
    if seq_a.num_levels != seq_b.num_levels:
        raise ValueError(
            f"cell sequences have different depths: {seq_a.num_levels} vs {seq_b.num_levels}"
        )
    triples: List[Tuple[int, int, int]] = []
    for level_a, level_b in zip(seq_a.levels, seq_b.levels):
        # Intersect from the smaller side; sets of namedtuples hash cheaply.
        smaller, larger = (level_a, level_b) if len(level_a) <= len(level_b) else (level_b, level_a)
        shared = sum(1 for cell in smaller if cell in larger)
        triples.append((len(level_a), len(level_b), shared))
    return triples


class AssociationMeasure(abc.ABC):
    """Base class for association degree measures.

    Concrete measures implement :meth:`score_levels`, which receives the
    per-level set sizes and overlap counts; :meth:`score` adapts it to a pair
    of :class:`~repro.traces.events.CellSequence` objects.
    """

    #: Human-readable name used in experiment tables.
    name: str = "adm"

    @abc.abstractmethod
    def score_levels(self, overlaps: List[Tuple[int, int, int]]) -> float:
        """Score a pair of entities from per-level ``(|A|, |B|, |A ∩ B|)`` triples.

        Implementations must return a value in ``[0, 1]`` and must be
        non-decreasing in every intersection size and non-increasing in the
        individual set sizes (for a fixed intersection).
        """

    def score(self, seq_a: CellSequence, seq_b: CellSequence) -> float:
        """Association degree between two entities' ST-cell set sequences."""
        if seq_a.is_empty() or seq_b.is_empty():
            return 0.0
        value = self.score_levels(level_overlaps(seq_a, seq_b))
        # Guard against floating point drift outside the contract range.
        if value < 0.0:
            return 0.0
        if value > 1.0:
            return 1.0
        return value

    def __call__(self, seq_a: CellSequence, seq_b: CellSequence) -> float:
        return self.score(seq_a, seq_b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
