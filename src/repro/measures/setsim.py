"""Classic set similarities lifted to per-level ST-cell sets.

Section 3.2 presents the association degree as "a generalisation of a large
family of set similarity functions; e.g. Jaccard similarity, Dice similarity,
F-score".  These measures instantiate that family: each one applies a classic
set similarity to every level of the ST-cell set sequence and combines the
levels with non-negative weights (uniform by default), normalised so that two
identical non-empty traces score exactly 1.

All of them satisfy the generic ADM properties, and -- because the per-level
similarity is non-decreasing in the intersection size once the candidate set
is replaced by the intersection itself -- they are compatible with the
Theorem 4 upper bound used by the search algorithm (verified by the
property-based tests in ``tests/test_measure_properties.py``).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.measures.base import AssociationMeasure, tabulated_bound_kernel

__all__ = ["JaccardADM", "DiceADM", "OverlapADM", "FScoreADM"]


def _normalise_weights(num_levels: int, weights: Optional[Sequence[float]]) -> Tuple[float, ...]:
    if weights is None:
        weights = [1.0] * num_levels
    weights = tuple(float(weight) for weight in weights)
    if len(weights) != num_levels:
        raise ValueError(f"expected {num_levels} level weights, got {len(weights)}")
    if any(weight < 0 for weight in weights):
        raise ValueError("level weights must be non-negative")
    total = sum(weights)
    if total <= 0:
        raise ValueError("at least one level weight must be positive")
    return tuple(weight / total for weight in weights)


class _WeightedLevelMeasure(AssociationMeasure):
    """Shared machinery: weighted average of a per-level similarity in [0, 1]."""

    def __init__(self, num_levels: int, weights: Optional[Sequence[float]] = None) -> None:
        if num_levels < 1:
            raise ValueError(f"num_levels must be >= 1, got {num_levels}")
        self.num_levels = num_levels
        self.weights = _normalise_weights(num_levels, weights)

    def _level_similarity(self, size_a: int, size_b: int, shared: int) -> float:
        raise NotImplementedError

    def _level_similarity_batch(
        self, sizes_a: np.ndarray, sizes_b: np.ndarray, shared: np.ndarray
    ) -> np.ndarray:
        """Vectorised counterpart of :meth:`_level_similarity`.

        The fallback loops over the scalar hook, so any subclass is
        batch-correct by construction; the concrete measures below override
        it with exact vectorised arithmetic.
        """
        out = np.empty(sizes_a.shape[0], dtype=np.float64)
        for row in range(sizes_a.shape[0]):
            out[row] = self._level_similarity(
                int(sizes_a[row]), int(sizes_b[row]), int(shared[row])
            )
        return out

    def score_levels(self, overlaps: List[Tuple[int, int, int]]) -> float:
        if len(overlaps) != self.num_levels:
            raise ValueError(
                f"expected overlaps for {self.num_levels} levels, got {len(overlaps)}"
            )
        total = 0.0
        for weight, (size_a, size_b, shared) in zip(self.weights, overlaps):
            if shared == 0 or weight == 0.0:
                continue
            total += weight * self._level_similarity(size_a, size_b, shared)
        return total

    def score_levels_batch(
        self,
        sizes_a: np.ndarray,
        sizes_b: np.ndarray,
        shared: np.ndarray,
    ) -> np.ndarray:
        """Vectorised weighted-average scoring, bit-identical per row.

        Rows the scalar loop skips (``shared == 0``) have an exactly-zero
        similarity in every member of this family, so adding their term
        matches the skip bit for bit; zero-weight levels are skipped the
        same way the scalar loop skips them.
        """
        if sizes_a.shape[1] != self.num_levels:
            raise ValueError(
                f"expected overlaps for {self.num_levels} levels, got {sizes_a.shape[1]}"
            )
        total = np.zeros(sizes_a.shape[0], dtype=np.float64)
        for level_index, weight in enumerate(self.weights):
            if weight == 0.0:
                continue
            total += weight * self._level_similarity_batch(
                sizes_a[:, level_index], sizes_b[:, level_index], shared[:, level_index]
            )
        return total

    def bound_batch_kernel(
        self, query_sizes: Sequence[int]
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Per-level lookup tables for Theorem 4 bound scores (see base).

        Each table entry routes through the scalar
        :meth:`_level_similarity` hook, so subclasses stay bit-identical
        without their own override; zero-weight levels contribute exact
        zeros, matching the scalar loop's skip.
        """

        def entry(level_index: int, surviving: int, query_size: int) -> float:
            weight = self.weights[level_index]
            if weight == 0.0:
                return 0.0
            return weight * self._level_similarity(surviving, query_size, surviving)

        return tabulated_bound_kernel(query_sizes, self.num_levels, entry)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(num_levels={self.num_levels})"


class JaccardADM(_WeightedLevelMeasure):
    """Weighted per-level Jaccard similarity ``|A ∩ B| / |A ∪ B|``."""

    name = "jaccard-adm"

    def _level_similarity(self, size_a: int, size_b: int, shared: int) -> float:
        union = size_a + size_b - shared
        if union == 0:
            return 0.0
        return shared / union

    def _level_similarity_batch(
        self, sizes_a: np.ndarray, sizes_b: np.ndarray, shared: np.ndarray
    ) -> np.ndarray:
        """Vectorised Jaccard: ``shared / union`` with empty unions scoring 0."""
        union = sizes_a + sizes_b - shared
        out = np.zeros(sizes_a.shape[0], dtype=np.float64)
        np.divide(shared, union, out=out, where=union != 0)
        return out


class DiceADM(_WeightedLevelMeasure):
    """Weighted per-level Dice coefficient ``2 |A ∩ B| / (|A| + |B|)``."""

    name = "dice-adm"

    def _level_similarity(self, size_a: int, size_b: int, shared: int) -> float:
        denominator = size_a + size_b
        if denominator == 0:
            return 0.0
        return 2.0 * shared / denominator

    def _level_similarity_batch(
        self, sizes_a: np.ndarray, sizes_b: np.ndarray, shared: np.ndarray
    ) -> np.ndarray:
        """Vectorised Dice: ``(2 * shared) / (|A| + |B|)``, same op order."""
        denominator = sizes_a + sizes_b
        out = np.zeros(sizes_a.shape[0], dtype=np.float64)
        np.divide(2.0 * shared, denominator, out=out, where=denominator != 0)
        return out


class OverlapADM(_WeightedLevelMeasure):
    """Weighted per-level overlap coefficient ``|A ∩ B| / min(|A|, |B|)``.

    This measure scores 1 whenever one trace is contained in the other, which
    makes it the most permissive member of the family; it is mainly useful to
    stress the search algorithm with very loose upper bounds.
    """

    name = "overlap-adm"

    def _level_similarity(self, size_a: int, size_b: int, shared: int) -> float:
        smallest = min(size_a, size_b)
        if smallest == 0:
            return 0.0
        return shared / smallest

    def _level_similarity_batch(
        self, sizes_a: np.ndarray, sizes_b: np.ndarray, shared: np.ndarray
    ) -> np.ndarray:
        """Vectorised overlap coefficient: ``shared / min(|A|, |B|)``."""
        smallest = np.minimum(sizes_a, sizes_b)
        out = np.zeros(sizes_a.shape[0], dtype=np.float64)
        np.divide(shared, smallest, out=out, where=smallest != 0)
        return out


class FScoreADM(_WeightedLevelMeasure):
    """Weighted per-level F\\ :sub:`β` score of the overlap.

    Precision is ``|A ∩ B| / |A|`` (how much of the candidate's presence is
    shared) and recall is ``|A ∩ B| / |B|`` (how much of the query's presence
    is shared); ``beta`` trades them off exactly as in information retrieval.
    With ``beta = 1`` the measure coincides with the Dice coefficient.
    """

    name = "fscore-adm"

    def __init__(
        self,
        num_levels: int,
        beta: float = 0.5,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(num_levels, weights)
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta)

    def _level_similarity(self, size_a: int, size_b: int, shared: int) -> float:
        if size_a == 0 or size_b == 0 or shared == 0:
            return 0.0
        precision = shared / size_a
        recall = shared / size_b
        beta_sq = self.beta * self.beta
        denominator = beta_sq * precision + recall
        if denominator == 0:
            return 0.0
        return (1.0 + beta_sq) * precision * recall / denominator

    def _level_similarity_batch(
        self, sizes_a: np.ndarray, sizes_b: np.ndarray, shared: np.ndarray
    ) -> np.ndarray:
        """Vectorised F\\ :sub:`β`, preserving the scalar operation order."""
        n_rows = sizes_a.shape[0]
        active = (sizes_a != 0) & (sizes_b != 0) & (shared != 0)
        precision = np.zeros(n_rows, dtype=np.float64)
        recall = np.zeros(n_rows, dtype=np.float64)
        np.divide(shared, sizes_a, out=precision, where=active)
        np.divide(shared, sizes_b, out=recall, where=active)
        beta_sq = self.beta * self.beta
        denominator = beta_sq * precision + recall
        out = np.zeros(n_rows, dtype=np.float64)
        np.divide(
            (1.0 + beta_sq) * precision * recall,
            denominator,
            out=out,
            where=active & (denominator != 0),
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FScoreADM(num_levels={self.num_levels}, beta={self.beta})"
