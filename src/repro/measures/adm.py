"""The paper's association degree measures.

:class:`HierarchicalADM` implements the extensible measure of Equation 7.1,

.. math::

    deg(e_a, e_b) = \\frac{\\sum_{l=1}^{m} l^u \\,
        \\left(\\frac{|P^l_{ab}|}{|P^l_a| + |P^l_b|}\\right)^v}{\\max},

where ``|P^l_ab|`` is the total duration of level-``l`` AjPIs (one base
temporal unit per shared ST-cell), ``|P^l_a|`` is the total duration of
``a``'s presence at level ``l``, and ``max`` normalises the score into
``[0, 1]``.  Larger ``u`` weights finer levels more heavily; larger ``v``
rewards long co-presence super-linearly.

:class:`ExampleDiceADM` is the fixed two-level measure used in the worked
Example 5.2.1, kept verbatim so the paper's numbers can be reproduced in the
unit tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.measures.base import AssociationMeasure

__all__ = ["HierarchicalADM", "ExampleDiceADM"]


class HierarchicalADM(AssociationMeasure):
    """The extensible ADM of Equation 7.1.

    Parameters
    ----------
    num_levels:
        Depth ``m`` of the sp-index the measure will be applied to.
    u:
        Level weight exponent (``> 0``); level ``l`` contributes with weight
        ``l ** u``, so finer levels dominate for large ``u``.  The paper uses
        ``u = 2`` by default and sweeps ``u ∈ [2, 5]`` in Figure 7.5.
    v:
        Duration exponent (``> 0``); the per-level Dice-style ratio is raised
        to ``v``, so long co-presence is rewarded super-linearly for ``v > 1``.
        The paper uses ``v = 2`` by default.
    """

    name = "hierarchical-adm"

    def __init__(self, num_levels: int, u: float = 2.0, v: float = 2.0) -> None:
        if num_levels < 1:
            raise ValueError(f"num_levels must be >= 1, got {num_levels}")
        if u <= 0 or v <= 0:
            raise ValueError(f"ADM exponents must be positive, got u={u}, v={v}")
        self.num_levels = num_levels
        self.u = float(u)
        self.v = float(v)
        self._level_weights = [float(level) ** self.u for level in range(1, num_levels + 1)]
        # The per-level ratio |intersection| / (|A| + |B|) is at most 1/2
        # (identical non-empty sets), so the maximal unnormalised score is
        # sum_l l^u * (1/2)^v.
        self._normaliser = sum(self._level_weights) * (0.5 ** self.v)

    def score_levels(self, overlaps: List[Tuple[int, int, int]]) -> float:
        if len(overlaps) != self.num_levels:
            raise ValueError(
                f"expected overlaps for {self.num_levels} levels, got {len(overlaps)}"
            )
        total = 0.0
        for weight, (size_a, size_b, shared) in zip(self._level_weights, overlaps):
            denominator = size_a + size_b
            if denominator == 0 or shared == 0:
                continue
            total += weight * (shared / denominator) ** self.v
        return total / self._normaliser

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HierarchicalADM(num_levels={self.num_levels}, u={self.u}, v={self.v})"


class ExampleDiceADM(AssociationMeasure):
    """The two-level Dice-style measure of Example 5.2.1.

    ``deg(e_i, e_j) = 0.1 * Dice(seq^1_i, seq^1_j) + 0.9 * Dice(seq^2_i, seq^2_j)``
    with ``Dice(A, B) = |A ∩ B| / (|A| + |B|)``.

    The measure is defined for exactly two sp-index levels.  A general
    weighted variant can be obtained by passing explicit ``weights``.
    """

    name = "example-dice-adm"

    def __init__(self, weights: Optional[Sequence[float]] = None) -> None:
        if weights is None:
            weights = (0.1, 0.9)
        weights = tuple(float(weight) for weight in weights)
        if any(weight < 0 for weight in weights):
            raise ValueError("level weights must be non-negative")
        if sum(weights) <= 0:
            raise ValueError("at least one level weight must be positive")
        self.weights = weights
        # Each Dice ratio is at most 1/2; normalise so identical traces score 1.
        self._normaliser = sum(weights) * 0.5

    def score_levels(self, overlaps: List[Tuple[int, int, int]]) -> float:
        if len(overlaps) != len(self.weights):
            raise ValueError(
                f"expected overlaps for {len(self.weights)} levels, got {len(overlaps)}"
            )
        total = 0.0
        for weight, (size_a, size_b, shared) in zip(self.weights, overlaps):
            denominator = size_a + size_b
            if denominator == 0:
                continue
            total += weight * shared / denominator
        return total / self._normaliser

    def raw_score_levels(self, overlaps: List[Tuple[int, int, int]]) -> float:
        """The un-normalised score exactly as printed in Example 5.2.1."""
        total = 0.0
        for weight, (size_a, size_b, shared) in zip(self.weights, overlaps):
            denominator = size_a + size_b
            if denominator == 0:
                continue
            total += weight * shared / denominator
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExampleDiceADM(weights={self.weights})"
