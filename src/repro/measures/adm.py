"""The paper's association degree measures.

:class:`HierarchicalADM` implements the extensible measure of Equation 7.1,

.. math::

    deg(e_a, e_b) = \\frac{\\sum_{l=1}^{m} l^u \\,
        \\left(\\frac{|P^l_{ab}|}{|P^l_a| + |P^l_b|}\\right)^v}{\\max},

where ``|P^l_ab|`` is the total duration of level-``l`` AjPIs (one base
temporal unit per shared ST-cell), ``|P^l_a|`` is the total duration of
``a``'s presence at level ``l``, and ``max`` normalises the score into
``[0, 1]``.  Larger ``u`` weights finer levels more heavily; larger ``v``
rewards long co-presence super-linearly.

:class:`ExampleDiceADM` is the fixed two-level measure used in the worked
Example 5.2.1, kept verbatim so the paper's numbers can be reproduced in the
unit tests.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.measures.base import AssociationMeasure, tabulated_bound_kernel

#: Soft cap on the per-measure memo of ``ratio -> ratio ** v`` values the
#: vectorised kernel keeps; ratios are small-integer rationals that repeat
#: massively, so the memo saturates quickly -- the cap only guards
#: pathological workloads from unbounded growth.
_POW_CACHE_LIMIT = 1 << 20

__all__ = ["HierarchicalADM", "ExampleDiceADM"]


class HierarchicalADM(AssociationMeasure):
    """The extensible ADM of Equation 7.1.

    Parameters
    ----------
    num_levels:
        Depth ``m`` of the sp-index the measure will be applied to.
    u:
        Level weight exponent (``> 0``); level ``l`` contributes with weight
        ``l ** u``, so finer levels dominate for large ``u``.  The paper uses
        ``u = 2`` by default and sweeps ``u ∈ [2, 5]`` in Figure 7.5.
    v:
        Duration exponent (``> 0``); the per-level Dice-style ratio is raised
        to ``v``, so long co-presence is rewarded super-linearly for ``v > 1``.
        The paper uses ``v = 2`` by default.
    """

    name = "hierarchical-adm"

    def __init__(self, num_levels: int, u: float = 2.0, v: float = 2.0) -> None:
        if num_levels < 1:
            raise ValueError(f"num_levels must be >= 1, got {num_levels}")
        if u <= 0 or v <= 0:
            raise ValueError(f"ADM exponents must be positive, got u={u}, v={v}")
        self.num_levels = num_levels
        self.u = float(u)
        self.v = float(v)
        self._level_weights = [float(level) ** self.u for level in range(1, num_levels + 1)]
        # The per-level ratio |intersection| / (|A| + |B|) is at most 1/2
        # (identical non-empty sets), so the maximal unnormalised score is
        # sum_l l^u * (1/2)^v.
        self._normaliser = sum(self._level_weights) * (0.5 ** self.v)
        # ratio -> ratio ** v, shared by every score_levels_batch call.  The
        # values are computed with Python's ``**`` (i.e. the platform libm),
        # because numpy's vectorised power kernel is *not* bit-identical to
        # it -- memoising the scalar power over the (few, heavily repeated)
        # distinct ratios keeps the batch path exact *and* fast.
        self._pow_cache: Dict[float, float] = {}

    def score_levels(self, overlaps: List[Tuple[int, int, int]]) -> float:
        if len(overlaps) != self.num_levels:
            raise ValueError(
                f"expected overlaps for {self.num_levels} levels, got {len(overlaps)}"
            )
        total = 0.0
        for weight, (size_a, size_b, shared) in zip(self._level_weights, overlaps):
            denominator = size_a + size_b
            if denominator == 0 or shared == 0:
                continue
            total += weight * (shared / denominator) ** self.v
        return total / self._normaliser

    def _pow_v(self, ratios: np.ndarray) -> np.ndarray:
        """Elementwise ``ratio ** v``, bit-identical to the scalar path.

        ``np.power`` disagrees with Python's ``**`` by 1 ulp on some inputs
        (numpy ships its own pow), which would break the columnar kernel's
        bitwise-equivalence pin -- so the power is evaluated by Python and
        memoised across calls.  Ratios are rationals of small set sizes, so
        the memo hit rate converges to ~100%; small batches loop the memo
        directly, large ones deduplicate through ``np.unique`` first.
        """
        if len(self._pow_cache) > _POW_CACHE_LIMIT:  # pragma: no cover - pathological
            self._pow_cache.clear()
        if ratios.size <= 96:
            return self._pow_memo(ratios)
        unique, inverse = np.unique(ratios, return_inverse=True)
        return self._pow_memo(unique)[inverse]

    def _pow_memo(self, ratios: np.ndarray) -> np.ndarray:
        """The memoised scalar-pow loop shared by both :meth:`_pow_v` branches."""
        cache = self._pow_cache
        powered = np.empty(ratios.size, dtype=np.float64)
        for position, ratio in enumerate(ratios.tolist()):
            value = cache.get(ratio)
            if value is None:
                value = ratio**self.v
                cache[ratio] = value
            powered[position] = value
        return powered

    def bound_batch_kernel(
        self, query_sizes: Sequence[int]
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Per-level lookup tables for Theorem 4 bound scores.

        Level ``l`` contributes ``l^u * (s / (s + |Q_l|))^v`` for survivor
        count ``s`` -- one free integer per level -- so the whole bound
        evaluation becomes ``m`` table gathers, one accumulation per level
        (same order as the scalar loop), and the final normalisation.
        Every table entry is computed with the scalar path's exact
        arithmetic, so results stay bit-identical.
        """
        return tabulated_bound_kernel(
            query_sizes,
            self.num_levels,
            lambda level_index, surviving, query_size: self._level_weights[level_index]
            * (surviving / (surviving + query_size)) ** self.v,
            normaliser=self._normaliser,
        )

    def score_levels_batch(
        self,
        sizes_a: np.ndarray,
        sizes_b: np.ndarray,
        shared: np.ndarray,
    ) -> np.ndarray:
        """Vectorised Equation 7.1 over ``(n_pairs, m)`` overlap arrays.

        Bit-identical per row to :meth:`score_levels`: the per-level terms
        accumulate in level order (numpy adds elementwise in the same
        sequence the scalar loop does), divisions are IEEE-correct in both
        paths, and the duration exponent goes through :meth:`_pow_v`.
        """
        if sizes_a.shape[1] != self.num_levels:
            raise ValueError(
                f"expected overlaps for {self.num_levels} levels, got {sizes_a.shape[1]}"
            )
        n_pairs = sizes_a.shape[0]
        total = np.zeros(n_pairs, dtype=np.float64)
        for level_index, weight in enumerate(self._level_weights):
            denominator = sizes_a[:, level_index] + sizes_b[:, level_index]
            ratio = np.zeros(n_pairs, dtype=np.float64)
            np.divide(
                shared[:, level_index], denominator, out=ratio, where=denominator != 0
            )
            # Rows the scalar loop skips (zero denominator or zero overlap)
            # have ratio 0, so their term is weight * 0**v == 0.0 -- adding
            # an exact zero matches skipping bit for bit.
            total += weight * self._pow_v(ratio)
        return total / self._normaliser

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HierarchicalADM(num_levels={self.num_levels}, u={self.u}, v={self.v})"


class ExampleDiceADM(AssociationMeasure):
    """The two-level Dice-style measure of Example 5.2.1.

    ``deg(e_i, e_j) = 0.1 * Dice(seq^1_i, seq^1_j) + 0.9 * Dice(seq^2_i, seq^2_j)``
    with ``Dice(A, B) = |A ∩ B| / (|A| + |B|)``.

    The measure is defined for exactly two sp-index levels.  A general
    weighted variant can be obtained by passing explicit ``weights``.
    """

    name = "example-dice-adm"

    def __init__(self, weights: Optional[Sequence[float]] = None) -> None:
        if weights is None:
            weights = (0.1, 0.9)
        weights = tuple(float(weight) for weight in weights)
        if any(weight < 0 for weight in weights):
            raise ValueError("level weights must be non-negative")
        if sum(weights) <= 0:
            raise ValueError("at least one level weight must be positive")
        self.weights = weights
        # Each Dice ratio is at most 1/2; normalise so identical traces score 1.
        self._normaliser = sum(weights) * 0.5

    def score_levels(self, overlaps: List[Tuple[int, int, int]]) -> float:
        if len(overlaps) != len(self.weights):
            raise ValueError(
                f"expected overlaps for {len(self.weights)} levels, got {len(overlaps)}"
            )
        total = 0.0
        for weight, (size_a, size_b, shared) in zip(self.weights, overlaps):
            denominator = size_a + size_b
            if denominator == 0:
                continue
            total += weight * shared / denominator
        return total / self._normaliser

    def score_levels_batch(
        self,
        sizes_a: np.ndarray,
        sizes_b: np.ndarray,
        shared: np.ndarray,
    ) -> np.ndarray:
        """Vectorised Example 5.2.1 scoring, bit-identical per row.

        Mirrors :meth:`score_levels` exactly: each level's term is
        ``(weight * shared) / denominator`` (same operation order), levels
        with an empty denominator contribute an exact zero, and terms
        accumulate in level order.
        """
        if sizes_a.shape[1] != len(self.weights):
            raise ValueError(
                f"expected overlaps for {len(self.weights)} levels, got {sizes_a.shape[1]}"
            )
        n_pairs = sizes_a.shape[0]
        total = np.zeros(n_pairs, dtype=np.float64)
        for level_index, weight in enumerate(self.weights):
            denominator = sizes_a[:, level_index] + sizes_b[:, level_index]
            term = np.zeros(n_pairs, dtype=np.float64)
            np.divide(
                weight * shared[:, level_index],
                denominator,
                out=term,
                where=denominator != 0,
            )
            total += term
        return total / self._normaliser

    def bound_batch_kernel(
        self, query_sizes: Sequence[int]
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Per-level lookup tables for Theorem 4 bound scores (see base)."""
        return tabulated_bound_kernel(
            query_sizes,
            len(self.weights),
            lambda level_index, surviving, query_size: self.weights[level_index]
            * surviving
            / (surviving + query_size),
            normaliser=self._normaliser,
        )

    def raw_score_levels(self, overlaps: List[Tuple[int, int, int]]) -> float:
        """The un-normalised score exactly as printed in Example 5.2.1."""
        total = 0.0
        for weight, (size_a, size_b, shared) in zip(self.weights, overlaps):
            denominator = size_a + size_b
            if denominator == 0:
                continue
            total += weight * shared / denominator
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExampleDiceADM(weights={self.weights})"
