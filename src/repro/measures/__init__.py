"""Association degree measures (ADMs).

Section 3.2 of the paper defines association as *any* scoring function over
presence-instance overlaps that is normalised to ``[0, 1]``, monotone in the
amount of overlap, and anti-monotone in the individual entities' total
activity.  The index and the search algorithm only rely on those properties.

This subpackage provides:

* :class:`~repro.measures.base.AssociationMeasure` -- the abstract contract.
* :class:`~repro.measures.adm.HierarchicalADM` -- the extensible measure of
  Equation 7.1 used throughout the paper's evaluation.
* :class:`~repro.measures.adm.ExampleDiceADM` -- the two-level Dice-style
  measure of Example 5.2.1.
* Classic set similarities lifted to per-level ST-cell sets:
  :class:`~repro.measures.setsim.JaccardADM`,
  :class:`~repro.measures.setsim.DiceADM`,
  :class:`~repro.measures.setsim.OverlapADM`,
  :class:`~repro.measures.setsim.FScoreADM`.
"""

from repro.measures.adm import ExampleDiceADM, HierarchicalADM
from repro.measures.base import AssociationMeasure, level_overlaps
from repro.measures.setsim import DiceADM, FScoreADM, JaccardADM, OverlapADM

__all__ = [
    "AssociationMeasure",
    "DiceADM",
    "ExampleDiceADM",
    "FScoreADM",
    "HierarchicalADM",
    "JaccardADM",
    "OverlapADM",
    "level_overlaps",
]
