"""Crash recovery for the serving tiers: snapshot restore + WAL replay.

A serving process accepts an event the moment its flush returns, so a crash
must not lose flushed events.  The two durability pieces fit together here:

* the :class:`~repro.streaming.wal.WriteAheadLog` holds every flushed
  micro-batch (appended *before* the flush mutated the engine);
* every published generation -- full snapshot or delta -- is stamped with
  the WAL sequence it corresponds to plus the owner's stream state
  (watermark, window cutoff, compaction churn).

Recovery is therefore: restore the newest generation (full snapshot plus
delta chain, see :mod:`repro.server.generation`), seed the stream state,
and replay every WAL record with ``seq`` greater than the stamped
``wal_seq`` through :meth:`~repro.streaming.ingestor.EventIngestor.ingest_batch`.
Because flushes are deterministic given their buffer and watermark, the
recovered engine is byte-identical to the crashed process's engine at its
last flush -- pinned by ``tests/test_wal.py`` and the crash-injection test
in ``tests/test_server_equivalence.py``; the full walk-through lives in
``docs/DURABILITY.md``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.server.generation import GenerationStore
from repro.storage.snapshot import SnapshotError
from repro.streaming.ingestor import EventIngestor, StreamingConfig
from repro.streaming.wal import ReplaySummary, WriteAheadLog, replay_into

__all__ = ["recover_engine_from_store", "replay_wal_into_engine"]


def recover_engine_from_store(
    store_root,
    timeout: float = 30.0,
) -> Optional[Tuple[object, Dict[str, object], int]]:
    """Restore the newest published engine from a generation store.

    Returns ``(engine, durability_meta, generation)`` for the newest
    generation, or ``None`` when the store holds nothing yet (a first
    boot).  ``durability_meta`` is the ``extra`` metadata stamped at
    publish time (``wal_seq`` and ``stream`` state) -- an empty dict when
    the generation predates durability stamping.
    """
    store = GenerationStore(store_root)
    if store.current() is None:
        return None
    try:
        generation, engine = store.load_current(timeout=timeout)
    except SnapshotError:
        return None
    meta = store.current_meta() or {}
    return engine, dict(meta), generation


def replay_wal_into_engine(
    engine,
    wal: WriteAheadLog,
    streaming: Optional[StreamingConfig] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Tuple[ReplaySummary, Dict[str, object]]:
    """Replay the WAL suffix after ``meta["wal_seq"]`` onto ``engine``.

    A scratch :class:`~repro.streaming.EventIngestor` with the serving
    tier's ``streaming`` config is seeded with the snapshot's stream state
    and driven record by record, reproducing every original flush --
    including drop-late decisions, expiries, and auto-compactions -- so
    the engine ends byte-identical to the crashed owner's.  Returns the
    replay summary and the post-replay stream state, which the caller
    passes to the server constructor (``stream_state=``) so the serving
    ingestor continues exactly where the log ends.
    """
    meta = meta or {}
    ingestor = EventIngestor(engine, config=streaming)
    stream = meta.get("stream") or {}
    ingestor.restore_stream_state(
        watermark=int(stream.get("watermark", 0)),
        window_cutoff=stream.get("window_cutoff"),
        window_churn=int(stream.get("window_churn", 0)),
    )
    start_seq = int(meta.get("wal_seq", 0)) + 1
    summary = replay_into(ingestor, wal, start_seq=start_seq)
    return summary, ingestor.stream_state()
