"""The serving daemon: :class:`TraceServer` and its HTTP transport.

This module turns an in-process engine -- a
:class:`~repro.core.engine.TraceQueryEngine` or a
:class:`~repro.service.sharded.ShardedEngine` -- into a multi-client
network service with exactly the semantics of the in-process API.  It is
built entirely on the standard library (``http.server``), so serving adds
no runtime dependency.

Layering (transport-free core, thin HTTP skin):

* :class:`TraceServer` owns the engine, one engine lock, an
  :class:`~repro.streaming.EventIngestor` (streamed writes), a
  :class:`~repro.server.coalescer.RequestCoalescer` (batched reads), and
  :class:`~repro.server.metrics.ServerMetrics`.  Its ``handle_*`` methods
  take parsed JSON and return ``(status, payload)`` pairs -- fully testable
  without sockets, and the doctest below runs exactly that way.
* :func:`build_http_server` wraps a :class:`TraceServer` in a
  ``ThreadingHTTPServer`` routing ``POST /v1/topk``, ``POST /v1/events``,
  ``GET /v1/healthz``, ``GET /v1/stats``, ``GET /metrics`` (Prometheus
  text exposition), and ``GET /v1/debug/slow`` (the slow-query log; see
  ``docs/OBSERVABILITY.md``).

**Consistency model.**  One lock serialises engine access: reads run as
coalesced ``top_k_batch`` calls under the lock, writes (event appends and
flushes) run under the same lock.  Buffered events are invisible to
queries until a flush (micro-batch full, or ``"flush": true``), exactly as
for the in-process ingestor, so every response equals what the in-process
API would have returned at some serialisation point of the request stream
-- the concurrency-equivalence suite pins this byte-for-byte.

**Shutdown.**  :meth:`TraceServer.close` drains the coalescer, then
flushes the ingestor, so no accepted write is lost on a clean shutdown
(the CLI installs SIGINT/SIGTERM handlers that do this).

Example
-------
>>> from repro import SpatialHierarchy, TraceDataset, TraceQueryEngine
>>> from repro.server import TraceServer
>>> hierarchy = SpatialHierarchy.regular([2, 2])
>>> dataset = TraceDataset(hierarchy, horizon=48)
>>> dataset.add_record("ana", "u2_0_0", time=2, duration=3)
>>> dataset.add_record("bo", "u2_0_0", time=2, duration=3)
>>> server = TraceServer(TraceQueryEngine(dataset, num_hashes=16).build())
>>> status, payload = server.handle_topk({"entity": "ana", "k": 1})
>>> status, [r["entity"] for r in payload["results"]]
(200, ['bo'])
>>> status, payload = server.handle_events({"events": [
...     {"entity": "cy", "unit": "u2_0_0", "start": 2, "end": 5}], "flush": True})
>>> status, payload["accepted"], payload["affected_entities"]
(200, 1, ['cy'])
>>> server.handle_topk({"entity": "cy", "k": 2})[1]["results"][0]["entity"]
'ana'
>>> server.close()
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.obs import exposition
from repro.obs.trace import LATENCY_BUCKETS, SpanContext, Tracer
from repro.server.coalescer import QueueFullError, RequestCoalescer
from repro.server.metrics import ServerMetrics
from repro.server import protocol
from repro.streaming.ingestor import EventIngestor, StreamingConfig

__all__ = ["TraceServer", "build_http_server"]

Response = Tuple[int, Dict[str, object]]


class TraceServer:
    """The transport-free serving core: one engine behind checked JSON APIs.

    Parameters
    ----------
    engine:
        A **built** :class:`~repro.core.engine.TraceQueryEngine` or
        :class:`~repro.service.sharded.ShardedEngine`.
    streaming:
        Config of the embedded :class:`~repro.streaming.EventIngestor`
        (micro-batch size, window, compaction); defaults to
        ``StreamingConfig()``.
    coalesce_window:
        Seconds the request coalescer waits for concurrent queries to share
        a batch (0 dispatches immediately, still batching what queued).
    max_pending:
        Admission-control bound: top-k queries waiting for dispatch beyond
        this are answered ``429``.
    max_batch:
        Largest coalesced batch dispatched at once.
    trace_sample:
        Probability (0..1) that a top-k request is traced end to end
        (``repro serve --trace-sample``).  ``0`` (default) disables
        tracing entirely; any rate never changes responses -- the
        equivalence suite pins byte-identity under ``trace_sample=1.0``.
    tracer:
        Optional pre-built :class:`repro.obs.trace.Tracer`; overrides
        ``trace_sample`` (used by tests to control sampling seeds).
    wal:
        Optional :class:`~repro.streaming.wal.WriteAheadLog` the embedded
        ingestor appends every micro-batch to before flushing it, making
        accepted events crash-durable (``repro serve --wal``; see
        ``docs/DURABILITY.md``).
    stream_state:
        Optional recovered stream state (the dict of
        :meth:`~repro.streaming.EventIngestor.stream_state`) seeding the
        ingestor's watermark and window position, so a restarted server
        continues exactly where the recovered WAL ends.
    """

    def __init__(
        self,
        engine,
        streaming: Optional[StreamingConfig] = None,
        coalesce_window: float = 0.002,
        max_pending: int = 1024,
        max_batch: int = 64,
        trace_sample: float = 0.0,
        tracer: Optional[Tracer] = None,
        wal=None,
        stream_state: Optional[Dict[str, object]] = None,
    ) -> None:
        if not engine.is_built:
            raise ValueError("TraceServer requires a built engine")
        self.engine = engine
        #: Serialises every engine access: coalesced searches, event
        #: appends, flushes, and stats reads that touch engine state.
        self.engine_lock = threading.RLock()
        self.metrics = ServerMetrics()
        self.ingestor = EventIngestor(engine, config=streaming, wal=wal)
        if stream_state:
            self.ingestor.restore_stream_state(
                watermark=int(stream_state.get("watermark", 0)),
                window_cutoff=stream_state.get("window_cutoff"),
                window_churn=int(stream_state.get("window_churn", 0)),
            )
        self.coalescer = RequestCoalescer(
            engine,
            self.engine_lock,
            window_seconds=coalesce_window,
            max_pending=max_pending,
            max_batch=max_batch,
        )
        self.tracer = tracer if tracer is not None else Tracer(sample_rate=trace_sample)
        self.started_at = time.monotonic()
        self._closed = False
        self._flush_count = 0
        self.ingestor.add_flush_hook(self._record_flush)

    def _record_flush(self, report) -> None:
        self._flush_count += 1

    # ------------------------------------------------------------------
    # Endpoint handlers (transport-free)
    # ------------------------------------------------------------------
    def handle_topk(self, payload: object) -> Response:
        """``POST /v1/topk``: single queries through the coalescer, batch
        requests as one direct ``top_k_batch`` call.

        A batch request *is already a batch* -- routing its entities one by
        one through the coalescer would serialise them over several
        dispatch rounds (paying the coalesce window per entity and letting
        a flush land mid-batch).  Dispatching it whole under the engine
        lock keeps the shared-pre-hash amortisation and gives the response
        a single serialisation point.

        The sampling decision for cross-layer tracing happens here, at the
        request edge; sampled requests carry a trace context down through
        the coalescer/engine (and, in multi-process deployments, over the
        worker wire) and land in the tracer's ring and slow-query log.
        """
        trace = self.tracer.start_trace("request.topk")
        if trace is None:
            return self._answer_topk(payload, None)
        try:
            status, response = self._answer_topk(payload, trace.context())
        except BaseException:
            self.tracer.finish(trace, error=True)
            raise
        self.tracer.finish(trace, status=status, error=status >= 500)
        return status, response

    def _answer_topk(self, payload: object, trace: Optional[SpanContext]) -> Response:
        """The actual ``/v1/topk`` logic; ``trace`` is ``None`` when unsampled."""
        try:
            request = protocol.parse_topk_request(payload)
        except protocol.ProtocolError as exc:
            return exc.status, protocol.error_payload(str(exc))
        if trace is not None:
            trace.parent.attributes["batch"] = request.batch
            trace.parent.attributes["queries"] = len(request.entities)
        entity = request.entities[0]
        try:
            if request.batch:
                with self.engine_lock:
                    if self._closed:
                        return 503, protocol.error_payload(
                            "the server is shutting down"
                        )
                    unknown = [
                        candidate
                        for candidate in request.entities
                        if candidate not in self.engine.dataset
                    ]
                    if unknown:
                        return 404, protocol.error_payload(
                            f"unknown entity {unknown[0]!r}"
                        )
                    if trace is None:
                        results = self.engine.top_k_batch(
                            request.entities,
                            k=request.k,
                            approximation=request.approximation,
                        ).results
                    else:
                        results = self.engine.top_k_batch(
                            request.entities,
                            k=request.k,
                            approximation=request.approximation,
                            traces=[trace] * len(request.entities),
                        ).results
            else:
                # Cheap membership pre-check: an unknown entity answered
                # here costs nothing, while one reaching the coalescer
                # aborts its whole shared batch (every innocent co-rider
                # is re-run serially).  The coalescer's per-query fallback
                # still covers the check-to-dispatch removal race.
                if entity not in self.engine.dataset:
                    return 404, protocol.error_payload(f"unknown entity {entity!r}")
                results = [
                    self.coalescer.submit(
                        entity,
                        k=request.k,
                        approximation=request.approximation,
                        trace=trace,
                    )
                ]
        except QueueFullError as exc:
            return 429, protocol.error_payload(str(exc))
        except KeyError:
            return 404, protocol.error_payload(f"unknown entity {entity!r}")
        except RuntimeError as exc:
            return 503, protocol.error_payload(str(exc))
        return 200, protocol.topk_payload(request, results)

    def handle_events(self, payload: object) -> Response:
        """``POST /v1/events``: streamed ingest through the micro-batcher.

        Events are buffered; a flush happens when the micro-batch fills or
        the request asks for one (``"flush": true``).  Unknown or non-base
        spatial units are client errors (400) -- the whole request is
        rejected before any event is buffered, so a bad batch never
        half-applies.
        """
        try:
            request = protocol.parse_events_request(payload)
        except protocol.ProtocolError as exc:
            return exc.status, protocol.error_payload(str(exc))
        # Validate spatial units and periods *before* buffering anything:
        # the ingestor applies events lazily at flush time, and a bad event
        # surfacing in a later, unrelated request would be unattributable.
        # Rejecting here keeps event batches all-or-nothing.  The horizon
        # bound is load-bearing twice over: signature work is O(duration)
        # under the engine lock (one huge period would stall every client),
        # and the ingest watermark is monotone (one far-future end would
        # make a sliding window silently drop all later normal events).
        # Provision ``--horizon`` to cover the stream, as docs/SERVING.md
        # and docs/ARCHITECTURE.md prescribe.
        hierarchy = self.engine.dataset.hierarchy
        horizon = max(self.engine.dataset.horizon, 1)
        for position, event in enumerate(request.events):
            if (
                event.unit not in hierarchy
                or hierarchy.level_of(event.unit) != hierarchy.num_levels
            ):
                return 400, protocol.error_payload(
                    f"event #{position}: {event.unit!r} is not a base unit of "
                    "the sp-index"
                )
            if event.end > horizon:
                return 400, protocol.error_payload(
                    f"event #{position}: period ends at {event.end}, beyond the "
                    f"served horizon of {horizon} base temporal units (serve "
                    "with a larger --horizon, or rebuild the snapshot with "
                    "`repro index build --horizon`, to accept later events)"
                )
        flushed_events = 0
        dropped_late = 0
        affected: Optional[List[str]] = None

        def absorb(report) -> None:
            nonlocal flushed_events, dropped_late, affected
            flushed_events += report.events
            dropped_late += report.dropped_late
            if affected is None:
                affected = []
            seen = set(affected)
            affected.extend(
                entity for entity in report.affected_entities if entity not in seen
            )

        with self.engine_lock:
            # The shutting-down check must happen under the lock: close()
            # sets the flag and then takes this lock for the final flush,
            # so a handler that got here first completes before that flush
            # (its events are flushed, not lost), and one that arrives
            # after is rejected -- an acknowledged write can never land in
            # a buffer nobody will flush.
            if self._closed:
                return 503, protocol.error_payload("the server is shutting down")
            for event in request.events:
                report = self.ingestor.submit(event)
                if report is not None:
                    absorb(report)
            if request.flush and (self.ingestor.buffered_events or not request.events):
                absorb(self.ingestor.flush())
            buffered = self.ingestor.buffered_events
        return 200, protocol.events_payload(
            accepted=len(request.events),
            buffered=buffered,
            flushed_events=flushed_events,
            dropped_late=dropped_late,
            affected_entities=affected,
        )

    def handle_healthz(self) -> Response:
        """``GET /v1/healthz``: liveness plus the one-line deployment shape.

        Deliberately lock-free: a liveness probe that queued behind the
        engine lock would time out exactly when the daemon is busiest (a
        coalesced batch search or a micro-batch flush holds the lock for
        their full duration).  ``num_entities`` is a cheap dictionary-size
        read; a momentarily stale value is fine for a probe.

        Once :meth:`close` ran, the probe answers ``503`` (body status
        ``"shutting_down"``): a load balancer keying on the status code --
        which is what most of them do -- must stop routing to a draining
        process, not keep sending it traffic because the JSON body happens
        to spell out the state.
        """
        status = 200 if not self._closed else 503
        return status, {
            "status": "ok" if not self._closed else "shutting_down",
            "entities": self.engine.dataset.num_entities,
            "uptime_seconds": time.monotonic() - self.started_at,
        }

    def handle_stats(self) -> Response:
        """``GET /v1/stats``: engine, cache, ingest, coalescer, HTTP metrics.

        The whole payload is assembled from **one consistent read**: every
        source is snapshotted under the engine lock, in the fixed
        acquisition order *engine lock -> coalescer mutex -> metrics lock
        -> tracer lock* (all leaf locks never taken while holding each
        other, so the order is trivially deadlock-free).  A concurrent
        flush or dispatch therefore cannot interleave a half-updated view
        -- e.g. an engine whose entity count already includes a flush whose
        ingest counters do not.
        """
        return 200, self._stats_payload()

    def _stats_payload(self, coalescer: Optional[RequestCoalescer] = None) -> Dict[str, object]:
        """One coherent stats snapshot (see :meth:`handle_stats`).

        ``coalescer`` lets the multi-process front-end substitute its
        pool-facing coalescer while keeping the same acquisition order.
        """
        coalescer_source = coalescer if coalescer is not None else self.coalescer
        with self.engine_lock:
            engine_stats = self.engine.runtime_stats()
            ingest = self.ingestor.stats
            ingest_stats = {
                "events_submitted": ingest.events_submitted,
                "events_flushed": ingest.events_flushed,
                "events_buffered": ingest.events_buffered,
                "events_dropped_late": ingest.events_dropped_late,
                "batches_flushed": ingest.batches_flushed,
                "mean_batch_size": ingest.mean_batch_size,
                "seconds_in_flush": ingest.seconds_in_flush,
                "flushes": self._flush_count,
                "watermark": self.ingestor.watermark,
                "seconds_since_last_flush": (
                    time.monotonic() - ingest.last_flush_monotonic
                    if ingest.last_flush_monotonic is not None
                    else None
                ),
            }
            coalescer_stats = coalescer_source.stats_snapshot()
            endpoint_stats = self.metrics.snapshot()
            tracing_stats = self.tracer.counters_snapshot()
        return {
            "engine": engine_stats,
            "ingest": ingest_stats,
            "coalescer": coalescer_stats,
            "endpoints": endpoint_stats,
            "tracing": tracing_stats,
            "uptime_seconds": time.monotonic() - self.started_at,
        }

    def handle_metrics(self) -> Tuple[int, str]:
        """``GET /metrics``: Prometheus text exposition (format 0.0.4).

        Renders the per-endpoint request histograms, per-stage span
        latency histograms, coalescer/trace counters, and ingest-lag and
        cache gauges.  Sources are snapshotted with the same single
        acquisition order as :meth:`handle_stats`.
        """
        return 200, exposition.render_exposition(self._metric_families())

    def _metric_families(
        self, coalescer: Optional[RequestCoalescer] = None
    ) -> List[exposition.MetricFamily]:
        """Assemble the metric families ``GET /metrics`` renders.

        The multi-process front-end substitutes its pool-facing coalescer
        and appends worker-pool and generation families.
        """
        coalescer_source = coalescer if coalescer is not None else self.coalescer
        with self.engine_lock:
            engine_stats = self.engine.runtime_stats()
            ingest = self.ingestor.stats
            buffered = ingest.events_buffered
            events_submitted = ingest.events_submitted
            events_flushed = ingest.events_flushed
            events_dropped = ingest.events_dropped_late
            last_flush = ingest.last_flush_monotonic
            coalescer_stats = coalescer_source.stats_snapshot()
            endpoints = self.metrics.raw_snapshot()
            stages = self.tracer.stage_snapshot()
            tracing = self.tracer.counters_snapshot()

        families: List[exposition.MetricFamily] = []

        families.append(
            exposition.MetricFamily(
                name="repro_requests_total",
                kind="counter",
                help="HTTP requests answered, by endpoint.",
                samples=[
                    ("", {"endpoint": endpoint}, float(entry["requests"]))
                    for endpoint, entry in endpoints.items()
                ],
            )
        )
        families.append(
            exposition.MetricFamily(
                name="repro_responses_total",
                kind="counter",
                help="HTTP responses, by endpoint and status code.",
                samples=[
                    ("", {"endpoint": endpoint, "status": status}, float(count))
                    for endpoint, entry in endpoints.items()
                    for status, count in sorted(entry["status"].items())
                ],
            )
        )
        latency = exposition.MetricFamily(
            name="repro_request_latency_seconds",
            kind="histogram",
            help="End-to-end HTTP request latency, by endpoint.",
        )
        for endpoint, entry in endpoints.items():
            latency.samples.extend(
                exposition.histogram_samples(
                    {"endpoint": endpoint},
                    entry["bucket_counts"],
                    LATENCY_BUCKETS,
                    entry["total_seconds"],
                    entry["count"],
                )
            )
        families.append(latency)

        stage_latency = exposition.MetricFamily(
            name="repro_stage_latency_seconds",
            kind="histogram",
            help="Span durations of traced requests, by pipeline stage.",
        )
        for stage in sorted(stages):
            entry = stages[stage]
            stage_latency.samples.extend(
                exposition.histogram_samples(
                    {"stage": stage},
                    entry["bucket_counts"],
                    LATENCY_BUCKETS,
                    entry["sum_seconds"],
                    entry["count"],
                )
            )
        families.append(stage_latency)

        families.append(
            exposition.MetricFamily(
                name="repro_traces_total",
                kind="counter",
                help="Traces sampled (started) and retained (recorded).",
                samples=[
                    ("", {"event": "started"}, float(tracing["started"])),
                    ("", {"event": "recorded"}, float(tracing["recorded"])),
                ],
            )
        )
        families.append(
            exposition.MetricFamily(
                name="repro_trace_sample_rate",
                kind="gauge",
                help="Configured trace sampling rate (0 disables tracing).",
                samples=[("", {}, float(tracing["sample_rate"]))],
            )
        )

        families.append(
            exposition.MetricFamily(
                name="repro_coalescer_queries_total",
                kind="counter",
                help="Coalescer admission and dispatch counters.",
                samples=[
                    ("", {"event": "submitted"}, float(coalescer_stats["submitted"])),
                    ("", {"event": "rejected"}, float(coalescer_stats["rejected"])),
                    ("", {"event": "dispatched"}, float(coalescer_stats["dispatched"])),
                    ("", {"event": "coalesced"}, float(coalescer_stats["coalesced"])),
                ],
            )
        )
        families.append(
            exposition.MetricFamily(
                name="repro_coalescer_batches_total",
                kind="counter",
                help="Coalescer dispatch rounds.",
                samples=[("", {}, float(coalescer_stats["batches"]))],
            )
        )

        families.append(
            exposition.MetricFamily(
                name="repro_ingest_events_total",
                kind="counter",
                help="Streamed events, by outcome.",
                samples=[
                    ("", {"outcome": "submitted"}, float(events_submitted)),
                    ("", {"outcome": "flushed"}, float(events_flushed)),
                    ("", {"outcome": "dropped_late"}, float(events_dropped)),
                ],
            )
        )
        ingest_lag = exposition.MetricFamily(
            name="repro_ingest_buffered_events",
            kind="gauge",
            help="Events accepted but not yet flushed into the index (ingest lag).",
            samples=[("", {}, float(buffered))],
        )
        families.append(ingest_lag)
        flush_age = exposition.MetricFamily(
            name="repro_ingest_last_flush_age_seconds",
            kind="gauge",
            help="Seconds since the last ingest flush (absent before the first).",
        )
        if last_flush is not None:
            flush_age.samples.append(("", {}, time.monotonic() - last_flush))
        families.append(flush_age)

        cache_stats = engine_stats.get("cache")
        cache_entries = exposition.MetricFamily(
            name="repro_cache_entries",
            kind="gauge",
            help="Query-result cache entries (absent when caching is off).",
        )
        cache_events = exposition.MetricFamily(
            name="repro_cache_events_total",
            kind="counter",
            help="Query-result cache hits/misses/evictions/invalidations.",
        )
        cache_hit_rate = exposition.MetricFamily(
            name="repro_cache_hit_rate",
            kind="gauge",
            help="Cumulative query-result cache hit rate.",
        )
        if cache_stats:
            cache_entries.samples.append(("", {}, float(cache_stats["entries"])))
            for event in ("hits", "misses", "evictions", "invalidations"):
                cache_events.samples.append(("", {"event": event}, float(cache_stats[event])))
            cache_hit_rate.samples.append(("", {}, float(cache_stats["hit_rate"])))
        families.extend([cache_entries, cache_events, cache_hit_rate])

        families.append(
            exposition.MetricFamily(
                name="repro_index_entities",
                kind="gauge",
                help="Entities in the served index.",
                samples=[("", {}, float(engine_stats.get("entities", 0)))],
            )
        )
        families.append(
            exposition.MetricFamily(
                name="repro_uptime_seconds",
                kind="gauge",
                help="Seconds since the server started.",
                samples=[("", {}, time.monotonic() - self.started_at)],
            )
        )
        return families

    def handle_debug_slow(self) -> Response:
        """``GET /v1/debug/slow``: the slow-query log.

        Returns the N slowest traces (full span trees, slowest first) and
        the most recent errored traces -- the tracer's bounded buffers, so
        the payload size is capped regardless of traffic.
        """
        return 200, {
            "sample_rate": self.tracer.sample_rate,
            "slowest": self.tracer.slow_snapshot(),
            "errored": self.tracer.errored_snapshot(),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Graceful shutdown: drain queries, then flush buffered events.

        Idempotent.  Order matters: the coalescer drains first (queries
        still in flight see pre-flush state, like any query racing a
        write), then the ingestor flushes so every accepted event is
        applied to the engine before the process exits.
        """
        if self._closed:
            return
        self._closed = True
        self.coalescer.close()
        with self.engine_lock:
            self.ingestor.close()

    def __enter__(self) -> "TraceServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the :class:`TraceServer` handlers.

    One instance per request (``http.server`` semantics); the shared state
    lives on ``self.server.trace_server``.  Request logging is routed into
    the metrics instead of stderr.
    """

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    #: Socket timeout: an idle keep-alive connection is dropped after this
    #: many seconds, which bounds how long server_close() can block while
    #: joining handler threads on shutdown.
    timeout = 10
    #: The only paths that get their own metrics key.  Anything else is
    #: folded into "other": client-chosen paths must not allocate
    #: per-path counters, or a hostile scanner grows the metrics without
    #: bound (the constant-memory constraint of repro.server.metrics).
    known_endpoints = frozenset(
        {"/v1/topk", "/v1/events", "/v1/healthz", "/v1/stats", "/metrics", "/v1/debug/slow"}
    )
    #: Largest accepted request body; far above any legitimate request
    #: given MAX_ITEMS_PER_REQUEST, and keeps a hostile client from
    #: ballooning handler memory.
    max_body_bytes = 32 * 1024 * 1024

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence the default per-request stderr line (metrics cover it)."""

    def _trace_server(self) -> TraceServer:
        return self.server.trace_server  # type: ignore[attr-defined]

    def _endpoint(self) -> str:
        """The bounded metrics key for this request's path."""
        path = self.path.split("?", 1)[0]
        return path if path in self.known_endpoints else "other"

    def _send(self, endpoint: str, started: float, status: int, payload: Dict) -> None:
        body = protocol.dumps(payload)
        # Observed *before* the body is written: once a client has read its
        # response, a follow-up /v1/stats read must already count it.
        self._trace_server().metrics.observe(
            endpoint, status=status, seconds=time.perf_counter() - started
        )
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status == 429:
            self.send_header("Retry-After", "1")
        if self.close_connection:
            # Set when the request body was left unread: the client must
            # not reuse a connection whose stream is desynchronised.
            self.send_header("Connection", "close")
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass

    def _send_text(self, endpoint: str, started: float, status: int, text: str) -> None:
        """Like :meth:`_send` but for the Prometheus text exposition."""
        body = text.encode("utf-8")
        self._trace_server().metrics.observe(
            endpoint, status=status, seconds=time.perf_counter() - started
        )
        self.send_response(status)
        # The content type Prometheus scrapers negotiate for the 0.0.4
        # text format.
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass

    def _read_json_body(self) -> object:
        # Error paths that leave the body unread must also close the
        # connection: on HTTP/1.1 keep-alive, unconsumed body bytes would
        # be parsed as the next request line, desynchronising every later
        # request on the connection.
        length = self.headers.get("Content-Length")
        if length is None:
            self.close_connection = True
            raise protocol.ProtocolError("Content-Length is required", status=411)
        try:
            size = int(length)
        except ValueError:
            self.close_connection = True
            raise protocol.ProtocolError(f"invalid Content-Length {length!r}") from None
        if size < 0 or size > self.max_body_bytes:
            self.close_connection = True
            raise protocol.ProtocolError(
                f"request body of {size} bytes exceeds the "
                f"{self.max_body_bytes}-byte cap",
                status=413,
            )
        raw = self.rfile.read(size)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise protocol.ProtocolError(f"request body is not valid JSON: {exc}") from exc

    def do_POST(self) -> None:
        started = time.perf_counter()
        # Route on the query-stripped path: clients and probes may append
        # query strings, which the JSON-body protocol simply ignores.
        path = self.path.split("?", 1)[0]
        endpoint = self._endpoint()
        if path not in ("/v1/topk", "/v1/events"):
            # Routed before the body is read, so an unknown path answers
            # 404 regardless of its payload and never pays a body read;
            # the unread body forces a connection close (see above).
            self.close_connection = True
            self._send(endpoint, started, 404, protocol.error_payload(f"unknown path {path}"))
            return
        try:
            payload = self._read_json_body()
        except protocol.ProtocolError as exc:
            self._send(endpoint, started, exc.status, protocol.error_payload(str(exc)))
            return
        if path == "/v1/topk":
            status, response = self._trace_server().handle_topk(payload)
        else:
            status, response = self._trace_server().handle_events(payload)
        self._send(endpoint, started, status, response)

    def do_GET(self) -> None:
        started = time.perf_counter()
        if self.headers.get("Content-Length") or self.headers.get("Transfer-Encoding"):
            # GET endpoints take no body; an unread body would desync a
            # keep-alive connection exactly like the POST error paths, so
            # close it (the same invariant _read_json_body keeps).
            self.close_connection = True
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            status, text = self._trace_server().handle_metrics()
            self._send_text(self._endpoint(), started, status, text)
            return
        if path == "/v1/healthz":
            status, response = self._trace_server().handle_healthz()
        elif path == "/v1/stats":
            status, response = self._trace_server().handle_stats()
        elif path == "/v1/debug/slow":
            status, response = self._trace_server().handle_debug_slow()
        elif path in ("/v1/topk", "/v1/events"):
            status, response = 405, protocol.error_payload(f"{path} requires POST")
        else:
            status, response = 404, protocol.error_payload(f"unknown path {path}")
        self._send(self._endpoint(), started, status, response)


def build_http_server(
    trace_server: TraceServer, host: str = "127.0.0.1", port: int = 8080
) -> ThreadingHTTPServer:
    """Bind a ``ThreadingHTTPServer`` serving ``trace_server``.

    Raises ``OSError`` when the port cannot be bound (in use, privileged,
    bad host) -- the CLI maps that to exit code 2.  ``port=0`` binds an
    ephemeral port; read the chosen one from ``server.server_address``.
    The caller owns the loop: ``server.serve_forever()`` to run,
    ``server.shutdown()`` (from another thread), ``server.server_close()``,
    then ``trace_server.close()`` to stop cleanly.

    Handler threads are non-daemon and joined by ``server_close()``
    (``block_on_close``), so an in-flight response is written out before
    the process exits -- a drained query is never answered with a severed
    connection.  The handler's socket timeout bounds the join: idle
    keep-alive connections drop after ``_Handler.timeout`` seconds.
    """
    httpd = ThreadingHTTPServer((host, port), _Handler)
    httpd.daemon_threads = False
    httpd.block_on_close = True
    httpd.trace_server = trace_server  # type: ignore[attr-defined]
    return httpd
