"""A small, honest HTTP/JSON client for scenarios, benchmarks, and tools.

The scenario backends and the latency benchmarks talk to live daemons over
real sockets on purpose -- but until this module each call site hand-rolled
its own ``http.client`` plumbing with an arbitrary timeout and surfaced raw
socket errors.  :class:`JsonHttpClient` centralises the client discipline:

* separate, configurable **connect** and **read** timeouts (a daemon that
  is slow to accept is a different failure from one that is slow to
  answer);
* **one retry on a reset connection** (``ECONNRESET`` / an aborted
  keep-alive socket): serving daemons drop idle connections on graceful
  restart and workers can die mid-exchange, and a single reconnect-and-
  retry hides exactly that transient without masking real failures --
  the retry only fires for connection-level errors *before a response was
  read*, never for HTTP error statuses;
* uniform error reporting: :class:`HttpClientError` carries the method,
  path, and underlying cause.

POST bodies and responses are JSON; callers get decoded documents back.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Dict, Optional, Tuple

__all__ = ["HttpClientError", "JsonHttpClient"]

#: Connection-level failures worth one reconnect-and-retry: the peer reset
#: or dropped the connection before we read a response.
_RETRYABLE = (
    ConnectionResetError,
    ConnectionAbortedError,
    BrokenPipeError,
    http.client.RemoteDisconnected,
)


class HttpClientError(RuntimeError):
    """A request that could not produce a decoded response.

    ``status`` is the HTTP status when the server answered with an error
    document, ``None`` for transport-level failures.
    """

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class JsonHttpClient:
    """JSON-over-HTTP client with explicit timeouts and one reset retry.

    Parameters
    ----------
    host, port:
        The daemon's address.
    connect_timeout:
        Seconds allowed for the TCP connect (and for the whole exchange on
        the first socket operation -- stdlib ``http.client`` has a single
        socket timeout, so the connect and read budgets are applied by
        swapping the socket timeout between phases).
    read_timeout:
        Seconds allowed for the server to produce a response once the
        request was written.
    retry_resets:
        Number of reconnect-and-retry attempts after a reset connection
        (default 1; ``0`` restores surface-the-raw-error behaviour).
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 10.0,
        read_timeout: float = 60.0,
        retry_resets: int = 1,
    ) -> None:
        if connect_timeout <= 0 or read_timeout <= 0:
            raise ValueError("timeouts must be > 0")
        if retry_resets < 0:
            raise ValueError(f"retry_resets must be >= 0, got {retry_resets}")
        self.host = host
        self.port = int(port)
        self.connect_timeout = float(connect_timeout)
        self.read_timeout = float(read_timeout)
        self.retry_resets = int(retry_resets)

    # ------------------------------------------------------------------
    # One exchange
    # ------------------------------------------------------------------
    def _exchange(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout
        )
        try:
            connection.connect()
            # Connected: the remaining budget is the read timeout.
            if connection.sock is not None:  # pragma: no branch - connected above
                connection.sock.settimeout(self.read_timeout)
            headers = {"Content-Type": "application/json"} if body is not None else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def request_json(
        self, method: str, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        """One JSON exchange; decoded body on HTTP 200, errors otherwise.

        Reset connections (``ECONNRESET`` and friends) are retried once by
        reconnecting -- the daemons' request handlers are idempotent for
        reads and event appends are acknowledged only after they are
        applied, so a reset *before the response* means the request may be
        safely re-sent.  Timeouts and HTTP error statuses are never
        retried.
        """
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        attempts = 1 + self.retry_resets
        last_reset: Optional[BaseException] = None
        for _attempt in range(attempts):
            try:
                status, data = self._exchange(method, path, body)
            except _RETRYABLE as exc:
                last_reset = exc
                continue
            except socket.timeout as exc:
                raise HttpClientError(
                    f"{method} {path} timed out after {self.read_timeout:.0f}s: {exc}"
                ) from exc
            except OSError as exc:
                raise HttpClientError(f"{method} {path} failed: {exc}") from exc
            if status != 200:
                raise HttpClientError(
                    f"{method} {path} -> {status}: {data[:200]!r}", status=status
                )
            try:
                return json.loads(data)
            except json.JSONDecodeError as exc:
                raise HttpClientError(
                    f"{method} {path} returned undecodable JSON: {exc}"
                ) from exc
        raise HttpClientError(
            f"{method} {path} failed after {attempts} attempts "
            f"(connection reset: {last_reset})"
        )

    def post_json(self, path: str, payload: Dict[str, object]) -> Dict[str, object]:
        """``POST`` a JSON document, returning the decoded 200 response."""
        return self.request_json("POST", path, payload)

    def get_json(self, path: str) -> Dict[str, object]:
        """``GET`` a JSON document, returning the decoded 200 response."""
        return self.request_json("GET", path)
