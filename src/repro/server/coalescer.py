"""Request coalescing: many concurrent top-k requests, one batch search.

Under load, a serving daemon sees many independent top-k requests in
flight at once.  Answering each on its own handler thread would serialise
on the engine lock and forfeit the amortisation the batch pipeline already
gives in-process callers (one bulk pre-hash of the union of query cells,
shared thread-pool fan-out -- see
:class:`~repro.core.query.BatchTopKExecutor`).  The
:class:`RequestCoalescer` recovers it at the network boundary:

* handler threads :meth:`~RequestCoalescer.submit` their query and block;
* a single dispatcher thread collects every request that arrives within a
  small window (``window_seconds``, default 2 ms) into one batch, groups it
  by ``(k, approximation)``, and answers each group with **one**
  ``engine.top_k_batch`` call under the server's engine lock;
* results are handed back to the blocked handler threads.

Because ``top_k_batch`` is documented (and pinned) to return exactly what
serial ``top_k`` calls would -- including cache semantics -- coalescing is
invisible in the responses: only latency and throughput change.

**Admission control.**  The pending queue is bounded (``max_pending``).
When it is full, :meth:`submit` fails fast with :class:`QueueFullError`
instead of letting requests pile up; the HTTP layer maps that to ``429
Too Many Requests``.  Bounded queue + fail-fast keeps the daemon's memory
and tail latency flat when offered load exceeds capacity.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.query import TopKResult
from repro.obs.trace import SpanContext

__all__ = ["CoalescerStats", "QueueFullError", "RequestCoalescer"]


class QueueFullError(Exception):
    """The coalescer's bounded pending queue is at capacity (HTTP 429)."""


@dataclass
class CoalescerStats:
    """Cumulative counters of one :class:`RequestCoalescer`."""

    #: Queries accepted by :meth:`RequestCoalescer.submit`.
    submitted: int = 0
    #: Queries rejected because the pending queue was full.
    rejected: int = 0
    #: Dispatch rounds (each answers one drained batch of queries).
    batches: int = 0
    #: Queries that shared their dispatch round with at least one other
    #: query -- the fraction ``coalesced / submitted`` is the headline
    #: coalescing rate under concurrent load.
    coalesced: int = 0
    #: Queries dispatched so far (submitted minus still-pending).
    dispatched: int = 0
    #: Largest batch dispatched in one round.
    max_batch: int = 0

    @property
    def mean_batch(self) -> float:
        """Average queries per dispatch round (0 before the first round)."""
        if not self.batches:
            return 0.0
        return self.dispatched / self.batches

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict copy for the stats endpoint."""
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "dispatched": self.dispatched,
            "max_batch": self.max_batch,
            "mean_batch": self.mean_batch,
        }


class _PendingQuery:
    """One blocked top-k request: inputs, a completion event, an outcome."""

    __slots__ = ("entity", "k", "approximation", "trace", "done", "result", "error")

    def __init__(
        self,
        entity: str,
        k: int,
        approximation: float,
        trace: Optional[SpanContext] = None,
    ) -> None:
        self.entity = entity
        self.k = k
        self.approximation = approximation
        self.trace = trace
        self.done = threading.Event()
        self.result: Optional[TopKResult] = None
        self.error: Optional[BaseException] = None


class RequestCoalescer:
    """Batches concurrent top-k queries into shared ``top_k_batch`` calls.

    Parameters
    ----------
    engine:
        A built :class:`~repro.core.engine.TraceQueryEngine` or
        :class:`~repro.service.sharded.ShardedEngine`.
    engine_lock:
        The lock serialising engine access against mutations (the server
        shares one lock between this dispatcher and the event-ingest path).
    window_seconds:
        How long the dispatcher waits, after the first pending query of a
        round, for more queries to coalesce with it.  ``0`` dispatches
        immediately (still batching whatever already queued).
    max_pending:
        Bound on queries waiting for dispatch; :meth:`submit` raises
        :class:`QueueFullError` beyond it.
    max_batch:
        Largest number of queries dispatched in one round; excess stays
        queued for the next round (back-to-back, no window wait).

    Example
    -------
    >>> import threading
    >>> from repro import SpatialHierarchy, TraceDataset, TraceQueryEngine
    >>> hierarchy = SpatialHierarchy.regular([2, 2])
    >>> dataset = TraceDataset(hierarchy, horizon=24)
    >>> dataset.add_record("ana", "u2_0_0", time=2, duration=3)
    >>> dataset.add_record("bo", "u2_0_0", time=2, duration=3)
    >>> engine = TraceQueryEngine(dataset, num_hashes=16).build()
    >>> coalescer = RequestCoalescer(engine, threading.Lock())
    >>> try:
    ...     coalescer.submit("ana", k=1).entities
    ... finally:
    ...     coalescer.close()
    ['bo']
    """

    def __init__(
        self,
        engine,
        engine_lock,
        window_seconds: float = 0.002,
        max_pending: int = 1024,
        max_batch: int = 64,
    ) -> None:
        if window_seconds < 0:
            raise ValueError(f"window_seconds must be >= 0, got {window_seconds}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.engine = engine
        self.window_seconds = window_seconds
        self.max_pending = max_pending
        self.max_batch = max_batch
        self.stats = CoalescerStats()
        self._engine_lock = engine_lock
        self._pending: List[_PendingQuery] = []
        self._mutex = threading.Lock()
        self._arrived = threading.Condition(self._mutex)
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._run, name="repro-coalescer", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # Client side (handler threads)
    # ------------------------------------------------------------------
    def submit(
        self,
        entity: str,
        k: int = 10,
        approximation: float = 0.0,
        trace: Optional[SpanContext] = None,
    ) -> TopKResult:
        """Enqueue one query and block until its batch was answered.

        Raises :class:`QueueFullError` when the pending queue is at
        capacity, ``RuntimeError`` when the coalescer is closed, and
        re-raises whatever the search itself raised (e.g. ``KeyError`` for
        an entity the engine does not know).

        ``trace`` attaches a ``coalesce.wait`` span covering the queue
        time and travels with the query so the dispatcher can hang its
        ``coalesce.dispatch`` and kernel spans under the right trace.
        """
        wait_span = trace.begin("coalesce.wait") if trace is not None else None
        query = _PendingQuery(entity, k, approximation, trace)
        with self._mutex:
            if self._closed:
                raise RuntimeError("the coalescer is closed")
            if len(self._pending) >= self.max_pending:
                self.stats.rejected += 1
                raise QueueFullError(
                    f"{len(self._pending)} queries already pending "
                    f"(max_pending={self.max_pending})"
                )
            self._pending.append(query)
            self.stats.submitted += 1
            self._arrived.notify()
        query.done.wait()
        if wait_span is not None:
            wait_span.end(error=query.error is not None)
        if query.error is not None:
            raise query.error
        assert query.result is not None
        return query.result

    # ------------------------------------------------------------------
    # Dispatcher side
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._mutex:
                waited_for_arrival = False
                while not self._pending and not self._closed:
                    self._arrived.wait()
                    waited_for_arrival = True
                if self._closed and not self._pending:
                    return
                if self.window_seconds > 0 and waited_for_arrival:
                    # Collect company: requests arriving inside the window
                    # join this round.  Waiting on the condition (which
                    # submit() notifies) rather than polling means one
                    # wakeup per arrival; a full batch or close() ends the
                    # wait early.  Rounds that start with queries already
                    # queued -- leftovers beyond max_batch, or arrivals
                    # during the previous dispatch -- skip the window:
                    # those queries have waited their share already.
                    deadline = time.monotonic() + self.window_seconds
                    while len(self._pending) < self.max_batch and not self._closed:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self._arrived.wait(timeout=remaining):
                            break
                batch = self._pending[: self.max_batch]
                del self._pending[: self.max_batch]
            if batch:
                self._dispatch(batch)

    def _dispatch(self, batch: List[_PendingQuery]) -> None:
        """Answer one drained batch: group, search, distribute."""
        with self._mutex:
            # Counter updates happen under the mutex so stats_snapshot()
            # never observes a half-updated pair (batches bumped but
            # dispatched not yet) -- the same coherent-snapshot contract
            # QueryResultCache and ServerMetrics keep.
            self.stats.batches += 1
            self.stats.max_batch = max(self.stats.max_batch, len(batch))
            self.stats.dispatched += len(batch)
            if len(batch) > 1:
                self.stats.coalesced += len(batch)
        groups: Dict[Tuple[int, float], List[_PendingQuery]] = {}
        for query in batch:
            groups.setdefault((query.k, query.approximation), []).append(query)
        for (k, approximation), members in groups.items():
            entities = [query.entity for query in members]
            # Open one coalesce.dispatch span per *traced* member; kernel
            # spans nest under it via the per-member contexts handed to
            # top_k_batch.  Untraced batches pass no traces at all, so the
            # hot path is unchanged when tracing is off.
            dispatch_spans = {}
            traces = None
            if any(query.trace is not None for query in members):
                traces = []
                for query in members:
                    if query.trace is None:
                        traces.append(None)
                        continue
                    span = query.trace.begin(
                        "coalesce.dispatch",
                        round_size=len(batch),
                        group_size=len(members),
                    )
                    dispatch_spans[id(query)] = span
                    traces.append(query.trace.under(span))
            try:
                with self._engine_lock:
                    if traces is None:
                        results = self.engine.top_k_batch(
                            entities, k=k, approximation=approximation
                        ).results
                    else:
                        results = self.engine.top_k_batch(
                            entities, k=k, approximation=approximation, traces=traces
                        ).results
            except BaseException as exc:  # noqa: BLE001 - handed to the waiter
                for span in dispatch_spans.values():
                    span.end(error=type(exc).__name__)
                self._fail_individually(members, k, approximation, exc)
                continue
            for query, result in zip(members, results):
                span = dispatch_spans.get(id(query))
                if span is not None:
                    span.end()
                query.result = result
                query.done.set()

    def _fail_individually(
        self,
        members: List[_PendingQuery],
        k: int,
        approximation: float,
        batch_error: BaseException,
    ) -> None:
        """Fall back to per-query searches when a batch failed.

        One bad query (typically an unknown entity raising ``KeyError``)
        must not poison the whole round: every member is retried alone and
        receives its own result or its own error.
        """
        for query in members:
            try:
                with self._engine_lock:
                    if query.trace is None:
                        query.result = self.engine.top_k(
                            query.entity, k=k, approximation=approximation
                        )
                    else:
                        query.result = self.engine.top_k(
                            query.entity,
                            k=k,
                            approximation=approximation,
                            trace=query.trace,
                        )
            except BaseException as exc:  # noqa: BLE001 - handed to the waiter
                query.error = exc
            query.done.set()
        del batch_error

    def stats_snapshot(self) -> Dict[str, object]:
        """A coherent copy of the counters, taken under the mutex.

        The stats endpoint's read path: :attr:`stats` is mutated under the
        mutex (by :meth:`submit` and the dispatcher), so reading its fields
        individually from another thread could observe a torn pair.
        """
        with self._mutex:
            return self.stats.snapshot()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting queries, drain what is pending, join the thread."""
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            self._arrived.notify_all()
        self._dispatcher.join()

    def __enter__(self) -> "RequestCoalescer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RequestCoalescer(window={self.window_seconds}s, "
            f"max_pending={self.max_pending}, max_batch={self.max_batch}, "
            f"pending={len(self._pending)})"
        )
