"""Wire format of the serving daemon: request parsing and response payloads.

Everything that crosses the HTTP boundary is defined here, so the transport
layer (:mod:`repro.server.app`) stays a thin router and the semantics are
testable without sockets.  The format is deliberately plain JSON over plain
dictionaries:

* requests are parsed and validated into small dataclasses
  (:class:`TopKRequest`, :class:`EventsRequest`); every validation failure
  raises :class:`ProtocolError` carrying the HTTP status to answer with;
* responses are built by pure functions (:func:`topk_payload`,
  :func:`events_payload`, :func:`error_payload`) and serialised with
  :func:`dumps`, which is canonical (sorted keys, fixed separators) so two
  identical results produce byte-identical response bodies -- the property
  the concurrency-equivalence suite asserts.

See ``docs/SERVING.md`` for the full endpoint reference with examples.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.query import TopKResult
from repro.traces.events import PresenceInstance

__all__ = [
    "EventsRequest",
    "ProtocolError",
    "TopKRequest",
    "dumps",
    "error_payload",
    "events_payload",
    "parse_events_request",
    "parse_topk_request",
    "topk_payload",
    "topk_result_payload",
]

#: Hard cap on entities per /v1/topk request and events per /v1/events
#: request; a request larger than this is a client error (413), not a
#: queueing problem.
MAX_ITEMS_PER_REQUEST = 4096


class ProtocolError(Exception):
    """A request that cannot be served, with the HTTP status to answer.

    Attributes
    ----------
    status:
        The HTTP status code (400 malformed, 404 unknown entity, 413 too
        large, ...).  The transport layer maps the exception straight to a
        response, so every validation rule lives next to the parsing code
        that enforces it.
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class TopKRequest:
    """A validated ``POST /v1/topk`` body.

    ``entities`` always holds at least one entity; ``batch`` records whether
    the client used the batch form (``{"entities": [...]}``) or the single
    form (``{"entity": ...}``), which only changes the response shape.
    """

    entities: List[str]
    k: int = 10
    approximation: float = 0.0
    batch: bool = False


@dataclass
class EventsRequest:
    """A validated ``POST /v1/events`` body.

    ``flush`` forces a micro-batch flush after the append, so a client can
    make its own writes immediately visible to queries.
    """

    events: List[PresenceInstance] = field(default_factory=list)
    flush: bool = False


def _require_mapping(payload: object) -> Mapping:
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _parse_int(payload: Mapping, name: str, default: int, minimum: int) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{name!r} must be an integer, got {value!r}")
    if value < minimum:
        raise ProtocolError(f"{name!r} must be >= {minimum}, got {value}")
    return value


def parse_topk_request(payload: object) -> TopKRequest:
    """Validate a ``/v1/topk`` body into a :class:`TopKRequest`.

    Accepts exactly one of ``entity`` (single form) and ``entities`` (batch
    form), plus optional ``k`` (default 10) and ``approximation`` (default
    0.0).  Raises :class:`ProtocolError` on anything else.

    >>> parse_topk_request({"entity": "ana", "k": 3}).entities
    ['ana']
    >>> request = parse_topk_request({"entities": ["ana", "bo"]})
    >>> request.batch, request.k
    (True, 10)
    """
    body = _require_mapping(payload)
    unknown = sorted(set(body) - {"entity", "entities", "k", "approximation"})
    if unknown:
        raise ProtocolError(f"unknown fields in topk request: {unknown}")
    single = body.get("entity")
    many = body.get("entities")
    if (single is None) == (many is None):
        raise ProtocolError("pass exactly one of 'entity' or 'entities'")
    if single is not None:
        if not isinstance(single, str) or not single:
            raise ProtocolError(f"'entity' must be a non-empty string, got {single!r}")
        entities = [single]
        batch = False
    else:
        if not isinstance(many, Sequence) or isinstance(many, (str, bytes)):
            raise ProtocolError(f"'entities' must be a list of strings, got {many!r}")
        if not many:
            raise ProtocolError("'entities' must not be empty")
        if len(many) > MAX_ITEMS_PER_REQUEST:
            raise ProtocolError(
                f"'entities' holds {len(many)} queries; the per-request cap is "
                f"{MAX_ITEMS_PER_REQUEST}",
                status=413,
            )
        for entity in many:
            if not isinstance(entity, str) or not entity:
                raise ProtocolError(
                    f"'entities' must be a list of non-empty strings, got {entity!r}"
                )
        entities = list(many)
        batch = True
    k = _parse_int(body, "k", default=10, minimum=1)
    approximation = body.get("approximation", 0.0)
    if isinstance(approximation, bool) or not isinstance(approximation, (int, float)):
        raise ProtocolError(f"'approximation' must be a number, got {approximation!r}")
    # json.loads accepts the non-standard NaN/Infinity literals; NaN slips
    # past a `< 0` check and then defeats every pruning comparison in the
    # search (an exhaustive scan per query), so reject non-finite here.
    if not math.isfinite(approximation) or approximation < 0:
        raise ProtocolError(f"'approximation' must be finite and >= 0, got {approximation}")
    return TopKRequest(
        entities=entities, k=k, approximation=float(approximation), batch=batch
    )


def _parse_event(record: object, position: int) -> PresenceInstance:
    body = _require_mapping(record)
    missing = sorted({"entity", "unit", "start", "end"} - set(body))
    if missing:
        raise ProtocolError(f"event #{position} is missing fields {missing}")
    unknown = sorted(set(body) - {"entity", "unit", "start", "end"})
    if unknown:
        raise ProtocolError(f"event #{position} has unknown fields {unknown}")
    entity, unit = body["entity"], body["unit"]
    if not isinstance(entity, str) or not entity:
        raise ProtocolError(f"event #{position}: 'entity' must be a non-empty string")
    if not isinstance(unit, str) or not unit:
        raise ProtocolError(f"event #{position}: 'unit' must be a non-empty string")
    start, end = body["start"], body["end"]
    for name, value in (("start", start), ("end", end)):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                f"event #{position}: {name!r} must be an integer, got {value!r}"
            )
    try:
        return PresenceInstance(entity, unit, start, end)
    except ValueError as exc:
        raise ProtocolError(f"event #{position}: {exc}") from exc


def parse_events_request(payload: object) -> EventsRequest:
    """Validate a ``/v1/events`` body into an :class:`EventsRequest`.

    The body carries ``events`` (a list of ``{entity, unit, start, end}``
    records, possibly empty) and an optional ``flush`` flag; an empty list
    with ``flush: true`` is the idiom for "make everything buffered
    visible now".

    >>> request = parse_events_request(
    ...     {"events": [{"entity": "ana", "unit": "u1_0", "start": 1, "end": 3}]}
    ... )
    >>> request.events[0].entity, request.flush
    ('ana', False)
    """
    body = _require_mapping(payload)
    unknown = sorted(set(body) - {"events", "flush"})
    if unknown:
        raise ProtocolError(f"unknown fields in events request: {unknown}")
    records = body.get("events", [])
    if not isinstance(records, Sequence) or isinstance(records, (str, bytes)):
        raise ProtocolError(f"'events' must be a list of event objects, got {records!r}")
    if len(records) > MAX_ITEMS_PER_REQUEST:
        raise ProtocolError(
            f"'events' holds {len(records)} events; the per-request cap is "
            f"{MAX_ITEMS_PER_REQUEST}",
            status=413,
        )
    flush = body.get("flush", False)
    if not isinstance(flush, bool):
        raise ProtocolError(f"'flush' must be a boolean, got {flush!r}")
    events = [_parse_event(record, position) for position, record in enumerate(records)]
    return EventsRequest(events=events, flush=flush)


# ----------------------------------------------------------------------
# Response payloads
# ----------------------------------------------------------------------
def topk_result_payload(result: TopKResult) -> Dict[str, object]:
    """The JSON shape of one :class:`~repro.core.query.TopKResult`."""
    stats = result.stats
    return {
        "query": result.query_entity,
        "results": [
            {"entity": entity, "score": score} for entity, score in result.items
        ],
        "stats": {
            "entities_scored": stats.entities_scored,
            "population": stats.population,
            "pruning_effectiveness": stats.pruning_effectiveness,
            "terminated_early": stats.terminated_early,
        },
    }


def topk_payload(
    request: TopKRequest, results: Sequence[TopKResult]
) -> Dict[str, object]:
    """The ``/v1/topk`` response body (single or batch form).

    The single form answers with the result object itself; the batch form
    wraps the per-query objects in ``{"results": [...]}`` so the two shapes
    are distinguishable without counting.
    """
    if not request.batch:
        return topk_result_payload(results[0])
    return {"results": [topk_result_payload(result) for result in results]}


def events_payload(
    accepted: int,
    buffered: int,
    flushed_events: int,
    dropped_late: int,
    affected_entities: Optional[Sequence[str]],
) -> Dict[str, object]:
    """The ``/v1/events`` response body.

    ``flushed_events``/``affected_entities`` describe the flush this request
    triggered (explicitly or by filling a micro-batch); ``affected_entities``
    is ``None`` when no flush happened.  ``dropped_late`` counts buffered
    events those flushes discarded because their period had already left
    the sliding window -- always present, so an acknowledged-but-dropped
    write is visible in the response rather than only in ``/v1/stats``.
    """
    payload: Dict[str, object] = {
        "accepted": accepted,
        "buffered": buffered,
        "flushed_events": flushed_events,
        "dropped_late": dropped_late,
    }
    if affected_entities is not None:
        payload["affected_entities"] = list(affected_entities)
    return payload


def error_payload(message: str) -> Dict[str, object]:
    """The uniform error body: ``{"error": message}``."""
    return {"error": message}


def dumps(payload: object) -> bytes:
    """Canonical JSON encoding (sorted keys, fixed separators, UTF-8).

    Canonical so that semantically identical responses are *byte*-identical
    -- the concurrency-equivalence test compares raw response bodies across
    the daemon and an in-process engine.
    """
    return (json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )
