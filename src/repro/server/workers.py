"""Read-only query worker process: ``python -m repro.server.workers``.

One worker is one OS process -- the unit the multi-process serving tier
uses to escape the GIL.  It owns a private engine restored from the newest
snapshot generation (columnar arrays memory-mapped, so all workers share
one physical copy through the page cache), listens on a Unix-domain socket,
and answers framed top-k requests from the front-end
(:mod:`repro.server.frontend`).  Workers never see writes: the front-end
applies those to the owner engine and publishes a new generation
(:mod:`repro.server.generation`), which the worker adopts **at a request
boundary** -- before computing each reply it re-reads the store's
``CURRENT`` file (one small-file read) and reloads when the generation
moved.  A request received after a publish therefore always observes at
least that generation.

Wire format (both directions): a 4-byte big-endian length prefix followed
by one UTF-8 JSON document.  Requests are ``{"op": "ping"}`` or
``{"op": "topk", "entities": [...], "k": int, "approximation": float}``;
replies carry the per-query payload dicts of
:func:`repro.server.protocol.topk_result_payload`.  JSON round-trips floats
exactly (``repr`` round-trip), so the front-end re-encoding a relayed
payload with the canonical :func:`repro.server.protocol.dumps` produces
bytes identical to an in-process response -- the equivalence suite pins
this end to end.

**Trace propagation.**  A ``topk`` request may carry an optional
``"traces"`` list aligned with ``entities``: ``None`` for unsampled
queries, ``{"trace_id", "span_id"}`` descriptors for sampled ones.  The
worker runs those queries under standalone
:class:`~repro.obs.trace.ActiveTrace` objects seeded with the propagated
ids and ships the finished spans back under a ``"spans"`` reply key
(per-index, durations plus offsets relative to the worker's root span);
the front-end re-bases them onto its own ``worker.request`` span so the
worker's kernel stages stitch into the frontend trace.  The ``"results"``
key is computed and encoded exactly as before -- old front-ends simply
never send ``"traces"``, old workers ignore the key, and byte-identity of
responses is untouched either way.

The worker is deliberately crash-oblivious: it holds no state the store
cannot restore, so the front-end answers a dead worker by respawning it
and retrying the (idempotent, read-only) request elsewhere.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import struct
import sys
from typing import Dict, List, Optional

from repro.obs.trace import ActiveTrace
from repro.server import protocol
from repro.server.generation import GenerationStore
from repro.storage.snapshot import SnapshotError

__all__ = ["QueryWorker", "main", "recv_frame", "send_frame"]

#: Upper bound on one frame; far above any legal request
#: (MAX_ITEMS_PER_REQUEST entities) and keeps a corrupt length prefix from
#: provoking a giant allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def send_frame(connection: socket.socket, payload: Dict[str, object]) -> None:
    """Write one length-prefixed JSON frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    connection.sendall(_LENGTH.pack(len(body)) + body)


def recv_frame(connection: socket.socket) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    header = _recv_exactly(connection, _LENGTH.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"frame of {length} bytes exceeds the cap")
    body = _recv_exactly(connection, length, eof_ok=False)
    document = json.loads(body.decode("utf-8"))
    if not isinstance(document, dict):
        raise ConnectionError("frame payload must be a JSON object")
    return document


def _recv_exactly(connection: socket.socket, count: int, eof_ok: bool) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = connection.recv(min(remaining, 1 << 20))
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _propagated_traces(
    descriptors: object, num_entities: int
) -> List[Optional[ActiveTrace]]:
    """Build standalone worker traces from the wire descriptors.

    Defensive by design: anything malformed -- not a list, misaligned with
    ``entities``, entries that are neither ``None`` nor id-bearing dicts --
    degrades to "untraced" rather than failing the query.  Tracing must
    never change whether a request succeeds.
    """
    traces: List[Optional[ActiveTrace]] = [None] * num_entities
    if not isinstance(descriptors, list) or len(descriptors) != num_entities:
        return traces
    for index, descriptor in enumerate(descriptors):
        if not isinstance(descriptor, dict):
            continue
        trace_id = descriptor.get("trace_id")
        span_id = descriptor.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            continue
        traces[index] = ActiveTrace(
            "worker.topk", trace_id=trace_id, parent_id=span_id, process="worker"
        )
    return traces


class QueryWorker:
    """The worker loop: adopt generations, answer framed top-k requests."""

    def __init__(self, store_root: str, socket_path: str, startup_timeout: float = 60.0) -> None:
        self.store = GenerationStore(store_root)
        self.socket_path = socket_path
        self.startup_timeout = startup_timeout
        self.generation = 0
        self.engine = None
        self._listener: Optional[socket.socket] = None
        self._stopping = False

    # ------------------------------------------------------------------
    # Generation adoption
    # ------------------------------------------------------------------
    def adopt_latest(self, timeout: float = 30.0) -> None:
        """Reload the engine iff a newer generation was published.

        Called before computing every reply (the request-boundary adoption
        the consistency model promises) and once at start-up, where it
        blocks until the owner's initial publish appears.

        When the newer generation is a delta on the chain this worker
        already stands on, the missing delta documents are applied to the
        loaded engine in place (:meth:`GenerationStore.catch_up`) -- one
        flush's operations plus an incremental kernel patch instead of a
        full snapshot reload.  Any chain discontinuity (a fresh full
        snapshot, a pruned chain, an unreadable delta) falls back to the
        full load path.
        """
        if self.engine is not None:
            try:
                caught_up = self.store.catch_up(self.engine, self.generation)
            except SnapshotError:
                caught_up = None
            if caught_up is not None:
                self.generation = caught_up
                return
        loaded = self.store.load_current(newer_than=self.generation, timeout=timeout)
        if loaded is not None:
            self.generation, self.engine = loaded

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle(self, request: Dict[str, object]) -> Dict[str, object]:
        """Answer one decoded frame: ``ping`` or ``topk`` (adopting first)."""
        operation = request.get("op")
        if operation == "ping":
            return {"ok": True, "generation": self.generation, "pid": os.getpid()}
        if operation != "topk":
            return {"error": f"unknown op {operation!r}", "status": 400}
        try:
            entities: List[str] = list(request["entities"])
            active_traces = _propagated_traces(request.get("traces"), len(entities))
            adopt_spans = [
                trace.begin("worker.adopt") if trace is not None else None
                for trace in active_traces
            ]
            self.adopt_latest()
            for span in adopt_spans:
                if span is not None:
                    span.end(generation=self.generation)
            k = int(request.get("k", 10))
            approximation = float(request.get("approximation", 0.0))
            contexts = None
            if any(trace is not None for trace in active_traces):
                contexts = [
                    trace.context() if trace is not None else None
                    for trace in active_traces
                ]
            if contexts is not None:
                results = self.engine.top_k_batch(
                    entities, k=k, approximation=approximation, traces=contexts
                ).results
            else:
                results = self.engine.top_k_batch(
                    entities, k=k, approximation=approximation
                ).results
        except KeyError as exc:
            return {"error": f"unknown entity {exc.args[0]!r}", "status": 404}
        except Exception as exc:  # noqa: BLE001 - relayed to the front-end
            return {"error": f"{type(exc).__name__}: {exc}", "status": 500}
        reply: Dict[str, object] = {
            "generation": self.generation,
            "results": [protocol.topk_result_payload(result) for result in results],
        }
        exported = {
            str(index): trace.export_spans()
            for index, trace in enumerate(active_traces)
            if trace is not None
        }
        if exported:
            reply["spans"] = exported
        return reply

    # ------------------------------------------------------------------
    # Serving loop
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Load the initial generation, bind the socket, serve until SIGTERM."""
        self.adopt_latest(timeout=self.startup_timeout)
        try:
            os.unlink(self.socket_path)
        except FileNotFoundError:
            pass
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(8)
        self._listener = listener

        def request_stop(signum, frame) -> None:
            self._stopping = True
            # Closing the listener pops the blocking accept() below.
            try:
                listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

        signal.signal(signal.SIGTERM, request_stop)
        signal.signal(signal.SIGINT, request_stop)

        try:
            while not self._stopping:
                try:
                    connection, _ = listener.accept()
                except OSError:
                    break  # listener closed by request_stop
                with connection:
                    self._serve_connection(connection)
        finally:
            try:
                listener.close()
            except OSError:
                pass
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        return 0

    def _serve_connection(self, connection: socket.socket) -> None:
        """Answer frames until the peer disconnects (or we are stopping)."""
        while not self._stopping:
            try:
                request = recv_frame(connection)
            except (ConnectionError, OSError, ValueError):
                return
            if request is None:
                return
            reply = self.handle(request)
            try:
                send_frame(connection, reply)
            except (BrokenPipeError, ConnectionResetError, OSError):
                return


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the worker subprocess; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.server.workers",
        description="read-only query worker of the multi-process serving tier "
        "(spawned by `repro serve --workers N`; not intended for direct use)",
    )
    parser.add_argument("--store", required=True, help="generation store directory")
    parser.add_argument("--socket", required=True, help="Unix socket path to serve on")
    parser.add_argument(
        "--startup-timeout",
        type=float,
        default=60.0,
        help="seconds to wait for the first published generation",
    )
    args = parser.parse_args(argv)
    worker = QueryWorker(args.store, args.socket, startup_timeout=args.startup_timeout)
    return worker.run()


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    sys.exit(main())
