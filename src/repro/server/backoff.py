"""Exponential backoff with jitter for respawn/reconnect loops.

Every place the serving tiers bring a dead process or connection back --
the multi-process :class:`~repro.server.frontend.WorkerPool`, the cluster
tier's :class:`~repro.cluster.replica.ReplicaGroup` -- shares the same
failure mode: if the target dies *on startup* (bad binary, missing store,
exhausted resource), a naive retry loop respawns it as fast as the OS can
fork, burning a core and flooding the process table.  :class:`ExponentialBackoff`
is the shared discipline: delays double from ``base`` up to ``cap``, a
deterministic-seedable jitter fraction decorrelates concurrent loops, and a
consecutive-failure streak long enough to count as a *storm*
(:attr:`ExponentialBackoff.STORM_THRESHOLD`) is surfaced to the caller so
it can be counted in ``/v1/stats`` and ``/metrics`` rather than discovered
from load averages.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["ExponentialBackoff"]


class ExponentialBackoff:
    """Doubling delays with jitter plus a consecutive-failure streak counter.

    Parameters
    ----------
    base:
        First delay in seconds.
    cap:
        Upper bound on any single delay (pre-jitter).
    jitter:
        Fraction of the delay added as uniform random noise (``0.2`` means
        the returned delay is ``delay * [1.0, 1.2)``), so concurrent
        respawn loops do not thundering-herd the same instant.
    seed:
        Optional seed for the jitter RNG -- tests pin it for determinism.

    Usage: call :meth:`next_delay` after each failure (sleep that long
    before retrying) and :meth:`reset` after a success.  :attr:`failures`
    is the current consecutive-failure streak; :meth:`is_storm` reports
    whether the streak crossed :attr:`STORM_THRESHOLD`.
    """

    #: Consecutive failures after which the loop counts as a respawn storm.
    STORM_THRESHOLD = 3

    def __init__(
        self,
        base: float = 0.05,
        cap: float = 5.0,
        jitter: float = 0.2,
        seed: Optional[int] = None,
    ) -> None:
        if base <= 0:
            raise ValueError(f"base must be > 0, got {base}")
        if cap < base:
            raise ValueError(f"cap must be >= base, got cap={cap} base={base}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be within [0, 1], got {jitter}")
        self.base = float(base)
        self.cap = float(cap)
        self.jitter = float(jitter)
        self.failures = 0
        self._rng = random.Random(seed)

    def next_delay(self) -> float:
        """Record one failure and return the delay to sleep before retrying."""
        delay = min(self.cap, self.base * (2.0 ** self.failures))
        self.failures += 1
        if self.jitter:
            delay *= 1.0 + self._rng.random() * self.jitter
        return delay

    def is_storm(self) -> bool:
        """Whether the current streak counts as a respawn storm."""
        return self.failures >= self.STORM_THRESHOLD

    def reset(self) -> None:
        """Clear the streak after a success."""
        self.failures = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExponentialBackoff(base={self.base}, cap={self.cap}, "
            f"failures={self.failures})"
        )
