"""The multi-process front-end: owner process + worker socket pool.

``repro serve --workers N`` escapes the GIL by splitting the daemon into
processes (see docs/SERVING.md for the full model):

* the **front-end process** (this module) accepts every HTTP request.  It
  is also the single **owner** of the mutable index: ``/v1/events`` flows
  into the embedded :class:`~repro.server.app.TraceServer` write path
  exactly as in single-process mode, and every index-changing flush
  publishes a new immutable snapshot generation
  (:class:`~repro.server.generation.GenerationStore`) from a flush hook,
  under the engine lock;
* ``/v1/topk`` never touches the owner engine.  Queries are admission
  controlled and coalesced by the same
  :class:`~repro.server.coalescer.RequestCoalescer` machinery as in-process
  serving -- pointed at a :class:`WorkerPool` instead of an engine -- and
  batches are scatter-gathered over N read-only **worker processes**
  (:mod:`repro.server.workers`) connected through a Unix-socket pool.

Workers adopt the newest generation at each request boundary, so every
query observes at least every generation published before the request was
received; the equivalence suite pins that the resulting responses are
byte-identical to the in-process daemon's.  A worker that dies (crash,
SIGKILL) is detected by its broken connection; its in-flight queries are
retried on the remaining workers -- reads are idempotent -- and the worker
is respawned in the background of the retry.
"""

from __future__ import annotations

import os
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from queue import Empty, Queue
from typing import Dict, List, Optional, Tuple

from repro.obs import exposition
from repro.obs.trace import SpanContext
from repro.server import protocol
from repro.server.app import TraceServer
from repro.server.backoff import ExponentialBackoff
from repro.server.coalescer import QueueFullError, RequestCoalescer
from repro.server.generation import DELTA_CHAIN_LIMIT, GenerationStore, SnapshotDelta
from repro.server.workers import recv_frame, send_frame
from repro.streaming.ingestor import StreamingConfig

__all__ = ["FrontendServer", "WorkerPool", "WorkerDiedError"]

Response = Tuple[int, Dict[str, object]]
PathLikeT = os.PathLike


class WorkerDiedError(ConnectionError):
    """A worker connection broke mid-request (crash, kill, wedge)."""


class _WorkerHandle:
    """One worker process plus its (lazily connected) request socket.

    The handle serialises requests on its connection with a lock; the pool
    keeps one handle per worker and hands idle handles to requesters.
    """

    def __init__(self, index: int, store_root: Path, spawn_command: List[str]) -> None:
        self.index = index
        self.socket_path = str(store_root / f"worker-{index:02d}.sock")
        self._spawn_command = spawn_command + ["--socket", self.socket_path]
        self._process: Optional[subprocess.Popen] = None
        self._connection: Optional[socket.socket] = None
        self.lock = threading.Lock()
        self.respawns = -1  # first spawn brings it to 0

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    def spawn(self) -> None:
        """Start (or restart) the worker process; drops any old connection."""
        self._drop_connection()
        if self._process is not None and self._process.poll() is None:
            self._process.terminate()
            try:
                self._process.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                self._process.kill()
                self._process.wait()
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        env = os.environ.copy()
        # The worker must import repro from the same tree as this process,
        # installed or not.
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        self._process = subprocess.Popen(self._spawn_command, env=env)
        self.respawns += 1

    def _drop_connection(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except OSError:
                pass
            self._connection = None

    def _connect(self, timeout: float) -> socket.socket:
        """Connect to the worker socket, waiting for it to come up."""
        deadline = time.monotonic() + timeout
        while True:
            connection = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                connection.connect(self.socket_path)
            except (FileNotFoundError, ConnectionRefusedError, OSError):
                connection.close()
                if self._process is not None and self._process.poll() is not None:
                    raise WorkerDiedError(
                        f"worker {self.index} exited with {self._process.returncode} "
                        "before accepting connections"
                    )
                if time.monotonic() >= deadline:
                    raise WorkerDiedError(
                        f"worker {self.index} did not accept a connection within "
                        f"{timeout:.0f}s"
                    )
                time.sleep(0.02)
                continue
            connection.settimeout(120.0)
            return connection

    def request(
        self, payload: Dict[str, object], connect_timeout: float = 30.0
    ) -> Dict[str, object]:
        """One framed request/reply exchange.  Raises :class:`WorkerDiedError`
        when the connection breaks -- the caller decides about respawn/retry."""
        with self.lock:
            try:
                if self._connection is None:
                    self._connection = self._connect(connect_timeout)
                send_frame(self._connection, payload)
                reply = recv_frame(self._connection)
            except WorkerDiedError:
                raise
            except (ConnectionError, OSError, ValueError) as exc:
                self._drop_connection()
                raise WorkerDiedError(f"worker {self.index} connection failed: {exc}") from exc
            if reply is None:
                self._drop_connection()
                raise WorkerDiedError(f"worker {self.index} closed the connection")
            return reply

    def close(self) -> None:
        """Terminate the worker and reap it."""
        self._drop_connection()
        if self._process is not None:
            if self._process.poll() is None:
                self._process.terminate()
                try:
                    self._process.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                    self._process.kill()
                    self._process.wait()
            self._process = None


class WorkerPool:
    """N worker processes behind an idle-handle queue.

    ``topk`` checks a handle out, performs one framed exchange, and checks
    it back in; concurrent callers therefore spread over the pool, and a
    scattered batch occupies as many workers as it has chunks.  A broken
    handle is respawned and the request retried on the pool -- bounded by
    ``num_workers + 1`` attempts so a systematically failing request
    cannot retry forever.
    """

    def __init__(
        self,
        store_root: PathLikeT,
        num_workers: int,
        startup_timeout: float = 60.0,
        respawn_backoff_base: float = 0.2,
        respawn_backoff_cap: float = 10.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.store_root = Path(store_root)
        self.num_workers = num_workers
        #: Backoff envelope of the respawn loop (see :meth:`_revive`); tests
        #: shrink these to keep the crash-loop regression fast.
        self.respawn_backoff_base = respawn_backoff_base
        self.respawn_backoff_cap = respawn_backoff_cap
        # Spawned via -c rather than -m: `python -m repro.server.workers`
        # would import the repro.server package (which itself imports the
        # workers module) before runpy re-executes it as __main__, tripping
        # a double-import RuntimeWarning.  The command line still contains
        # "repro.server.workers", so `pgrep -f` finds workers either way.
        command = [
            sys.executable,
            "-c",
            "import sys; from repro.server.workers import main; sys.exit(main(sys.argv[1:]))",
            "--store",
            str(self.store_root),
            "--startup-timeout",
            str(startup_timeout),
        ]
        self._handles = [
            _WorkerHandle(index, self.store_root, command) for index in range(num_workers)
        ]
        self._idle: "Queue[_WorkerHandle]" = Queue()
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._retries = 0
        self._respawn_storms = 0
        self._closed = False
        for handle in self._handles:
            handle.spawn()
        # Readiness barrier: one ping per worker proves the socket is up and
        # the initial generation loaded before any HTTP request is accepted.
        for handle in self._handles:
            handle.request({"op": "ping"}, connect_timeout=startup_timeout)
            self._idle.put(handle)

    @property
    def worker_pids(self) -> List[Optional[int]]:
        """The live worker process ids, in pool-slot order."""
        return [handle.pid for handle in self._handles]

    def _checkout(self) -> _WorkerHandle:
        while True:
            try:
                handle = self._idle.get(timeout=1.0)
            except Empty:
                if self._closed:
                    raise RuntimeError("the worker pool is closed") from None
                continue
            return handle

    def topk(
        self,
        entities: List[str],
        k: int,
        approximation: float,
        traces: Optional[List[Optional[SpanContext]]] = None,
    ) -> List[Dict[str, object]]:
        """Answer one batch of queries on one worker; respawn-and-retry on death.

        Returns the per-query payload dicts in request order.  Raises
        ``KeyError`` for an entity unknown to the worker's generation and
        ``RuntimeError`` for transport-level failures that survived every
        retry -- both mapped by the HTTP layer exactly like the in-process
        daemon's errors.

        ``traces`` (aligned with ``entities``; ``None`` entries for
        unsampled queries) propagates sampled trace contexts over the
        wire: each traced query gets a ``worker.request`` span covering
        the round-trip, the worker's own spans come back in the reply and
        are re-based onto that span, so the worker's kernel stages stitch
        into the frontend trace.  A retried attempt gets fresh spans; the
        failed attempt's span is closed with the error.
        """
        request: Dict[str, object] = {
            "op": "topk",
            "entities": list(entities),
            "k": int(k),
            "approximation": float(approximation),
        }
        if traces is not None and not any(t is not None for t in traces):
            traces = None
        attempts = self.num_workers + 1
        last_error: Optional[WorkerDiedError] = None
        for attempt in range(attempts):
            handle = self._checkout()
            spans = None
            if traces is not None:
                # Fresh spans (and therefore fresh parent ids on the wire)
                # per attempt: a worker's exported spans must hang under
                # the round-trip that actually produced them.
                spans = [
                    trace.begin("worker.request", worker=handle.index, attempt=attempt)
                    if trace is not None
                    else None
                    for trace in traces
                ]
                request["traces"] = [
                    {"trace_id": trace.trace.trace_id, "span_id": span.span_id}
                    if trace is not None and span is not None
                    else None
                    for trace, span in zip(traces, spans)
                ]
            try:
                reply = handle.request(request)
            except WorkerDiedError as exc:
                last_error = exc
                if spans is not None:
                    for span in spans:
                        if span is not None:
                            span.end(error=type(exc).__name__)
                with self._stats_lock:
                    self._retries += 1
                # Respawn in the background so the retry (on another worker)
                # is not serialised behind process start-up; the handle
                # returns to the idle queue once it answers a ping.
                threading.Thread(
                    target=self._revive, args=(handle,), daemon=True
                ).start()
                continue
            else:
                self._idle.put(handle)
            with self._stats_lock:
                self._requests += 1
            if spans is not None:
                self._stitch_spans(reply, traces, spans)
            error = reply.get("error")
            if error is not None:
                status = reply.get("status")
                if status == 404:
                    raise KeyError(str(error))
                raise RuntimeError(str(error))
            return list(reply["results"])
        raise RuntimeError(
            f"no worker answered after {attempts} attempts: {last_error}"
        )

    @staticmethod
    def _stitch_spans(
        reply: Dict[str, object],
        traces: List[Optional[SpanContext]],
        spans: List[object],
    ) -> None:
        """Re-base the worker's exported spans onto the round-trip spans."""
        exported = reply.get("spans")
        exported = exported if isinstance(exported, dict) else {}
        generation = reply.get("generation")
        for index, (trace, span) in enumerate(zip(traces, spans)):
            if trace is None or span is None:
                continue
            remote = exported.get(str(index))
            if remote:
                trace.trace.attach_remote(remote, anchor=span)
            span.end(generation=generation)

    def _revive(self, handle: _WorkerHandle) -> None:
        """Respawn a dead worker and return it to the idle queue when ready.

        A worker that dies *on startup* (broken interpreter, missing store,
        exhausted memory) would otherwise be respawned in a hot loop;
        consecutive failures instead back off exponentially (with jitter, so
        several reviving slots do not synchronise) and a streak long enough
        to count as a respawn storm increments the pool's
        ``respawn_storms`` counter -- visible in ``/v1/stats`` and
        ``/metrics`` so operators see the crash loop instead of the load
        average.
        """
        backoff = ExponentialBackoff(
            base=self.respawn_backoff_base, cap=self.respawn_backoff_cap
        )
        while not self._closed:
            try:
                handle.spawn()
                handle.request({"op": "ping"}, connect_timeout=60.0)
            except (WorkerDiedError, OSError):
                # Leave a (growing) beat and try again; a worker slot must
                # not leak even when the binary is persistently broken.
                delay = backoff.next_delay()
                if backoff.failures == ExponentialBackoff.STORM_THRESHOLD:
                    with self._stats_lock:
                        self._respawn_storms += 1
                time.sleep(delay)
                continue
            break
        if self._closed:
            handle.close()
        else:
            self._idle.put(handle)

    def scatter_topk(
        self,
        entities: List[str],
        k: int,
        approximation: float,
        traces: Optional[List[Optional[SpanContext]]] = None,
    ) -> List[Dict[str, object]]:
        """Scatter one batch over the pool, gather in request order.

        The batch is split into up to ``num_workers`` contiguous chunks so
        its queries run concurrently in separate processes; each chunk is a
        normal :meth:`topk` call with the same retry discipline (``traces``
        is sliced alongside).  Chunks may individually observe a newer
        generation than their siblings -- the documented batch-form
        relaxation of the consistency model.
        """
        if len(entities) <= 1 or self.num_workers == 1:
            return self.topk(entities, k, approximation, traces=traces)
        chunk_count = min(self.num_workers, len(entities))
        bounds = [
            (len(entities) * part) // chunk_count for part in range(chunk_count + 1)
        ]
        chunks = [entities[bounds[part] : bounds[part + 1]] for part in range(chunk_count)]
        trace_chunks = [
            traces[bounds[part] : bounds[part + 1]] if traces is not None else None
            for part in range(chunk_count)
        ]
        results: List[Optional[List[Dict[str, object]]]] = [None] * chunk_count
        errors: List[BaseException] = []

        def run(part: int) -> None:
            try:
                results[part] = self.topk(
                    chunks[part], k, approximation, traces=trace_chunks[part]
                )
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(part,)) for part in range(1, chunk_count)
        ]
        for thread in threads:
            thread.start()
        run(0)
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        gathered: List[Dict[str, object]] = []
        for part_results in results:
            assert part_results is not None
            gathered.extend(part_results)
        return gathered

    def stats_snapshot(self) -> Dict[str, object]:
        """Pool counters for ``/v1/stats``: requests, retries, respawns, storms."""
        with self._stats_lock:
            return {
                "workers": self.num_workers,
                "requests": self._requests,
                "retries": self._retries,
                "respawns": sum(max(handle.respawns, 0) for handle in self._handles),
                "respawn_storms": self._respawn_storms,
            }

    def close(self) -> None:
        """Terminate every worker (SIGTERM, reap) and reject further use."""
        self._closed = True
        for handle in self._handles:
            handle.close()


class _PoolDispatch:
    """Adapter giving :class:`RequestCoalescer` an engine-shaped view of the pool.

    The coalescer calls ``top_k_batch(...).results`` per dispatch round and
    falls back to per-query ``top_k`` when a batch fails; both route to the
    pool here, so admission control, windowed coalescing, and the
    one-bad-query fallback behave exactly as in-process -- only the
    execution substrate changed.
    """

    class _Batch:
        __slots__ = ("results",)

        def __init__(self, results: List[Dict[str, object]]) -> None:
            self.results = results

    def __init__(self, pool: WorkerPool) -> None:
        self._pool = pool

    def top_k_batch(
        self,
        entities,
        k: int,
        approximation: float,
        traces: Optional[List[Optional[SpanContext]]] = None,
    ) -> "_PoolDispatch._Batch":
        return self._Batch(
            self._pool.topk(list(entities), k, approximation, traces=traces)
        )

    def top_k(
        self,
        entity: str,
        k: int,
        approximation: float,
        trace: Optional[SpanContext] = None,
    ) -> Dict[str, object]:
        traces = [trace] if trace is not None else None
        return self._pool.topk([entity], k, approximation, traces=traces)[0]


class FrontendServer:
    """Drop-in :class:`~repro.server.app.TraceServer` replacement with N workers.

    Exposes the same ``handle_*`` surface (and ``metrics`` / ``ingestor`` /
    ``coalescer`` attributes), so :func:`~repro.server.app.build_http_server`
    and the CLI wrap it unchanged.  The embedded :class:`TraceServer` is the
    write owner; queries go to the worker pool.

    Parameters mirror ``TraceServer`` plus ``workers`` (process count),
    ``store_root`` (generation store directory; a private temporary
    directory, removed on close, when not given), and ``delta_limit``
    (delta-chain length before a full snapshot is forced; ``0`` publishes
    every generation full).
    """

    def __init__(
        self,
        engine,
        streaming: Optional[StreamingConfig] = None,
        workers: int = 2,
        coalesce_window: float = 0.002,
        max_pending: int = 1024,
        max_batch: int = 64,
        store_root: Optional[os.PathLike] = None,
        startup_timeout: float = 60.0,
        trace_sample: float = 0.0,
        wal=None,
        stream_state: Optional[Dict[str, object]] = None,
        delta_limit: int = DELTA_CHAIN_LIMIT,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._owns_store = store_root is None
        root = (
            Path(tempfile.mkdtemp(prefix="repro-generations-"))
            if store_root is None
            else Path(store_root)
        )
        self.owner = TraceServer(
            engine,
            streaming=streaming,
            coalesce_window=coalesce_window,
            max_pending=max_pending,
            max_batch=max_batch,
            trace_sample=trace_sample,
            wal=wal,
            stream_state=stream_state,
        )
        self.engine = engine
        self.engine_lock = self.owner.engine_lock
        self.metrics = self.owner.metrics
        self.ingestor = self.owner.ingestor
        #: One tracer for the deployment, owned by the embedded TraceServer:
        #: frontend spans and re-based worker spans land in the same ring
        #: and slow-query log.
        self.tracer = self.owner.tracer
        self.started_at = self.owner.started_at
        self.store = GenerationStore(root, delta_limit=delta_limit)
        self._closed = False
        try:
            # Initial generation: the engine as loaded, before any stream
            # write, so workers have something to adopt at spawn.
            with self.engine_lock:
                self.store.publish(engine, extra_meta=self._durability_meta())
            self.ingestor.add_flush_hook(self._publish_after_flush)
            self.pool = WorkerPool(root, workers, startup_timeout=startup_timeout)
            self.coalescer = RequestCoalescer(
                _PoolDispatch(self.pool),
                # The pool has its own concurrency discipline (idle-handle
                # checkout); a private lock here only orders the coalescer's
                # dispatch rounds with its own fallbacks.
                threading.Lock(),
                window_seconds=coalesce_window,
                max_pending=max_pending,
                max_batch=max_batch,
            )
        except BaseException:
            self.owner.close()
            if self._owns_store:
                shutil.rmtree(root, ignore_errors=True)
            raise

    # ------------------------------------------------------------------
    # Generation publishing (owner side)
    # ------------------------------------------------------------------
    def _durability_meta(self) -> Dict[str, object]:
        """WAL position and stream state stamped into every publish.

        Crash recovery restores the newest generation, seeds the stream
        state, and replays WAL records with ``seq`` greater than
        ``wal_seq`` -- see :func:`repro.server.recovery.replay_wal_into_engine`
        and ``docs/DURABILITY.md``.
        """
        wal = self.ingestor.wal
        return {
            "wal_seq": wal.last_seq if wal is not None else 0,
            "stream": self.ingestor.stream_state(),
        }

    def _publish_after_flush(self, report) -> None:
        """Flush hook: publish a generation when the flush changed the index.

        Runs under the engine lock (flushes hold it), so the snapshot is a
        consistent point-in-time image.  Publishing *before* the events
        response is written is what makes a client's read-your-write
        sequential: by the time the client learns its flush happened, every
        worker adopting at the next request boundary sees it.

        Index-changing flushes publish a *delta* generation when the chain
        allows it -- the flush's own operations as a small JSON document --
        and a full snapshot otherwise (every
        :data:`~repro.server.generation.DELTA_CHAIN_LIMIT` deltas, or when
        the report cannot describe the change).  Workers standing on the
        chain catch up in place; see :mod:`repro.server.generation`.
        """
        changed = (
            report.events
            or (report.expiry is not None and report.expiry.expired_records)
            or report.compacted
        )
        # No ``_closed`` guard: close() flushes the owner *before* stopping
        # the workers and removing the store, and that final flush must
        # publish too -- the newest generation always holds every accepted
        # write (the clean-drain guarantee the CI smoke checks).
        if changed:
            delta = SnapshotDelta(
                events=list(report.appended),
                cutoff=report.cutoff,
                compacted=bool(report.compacted),
            )
            self.store.publish_update(
                self.engine, delta=delta, extra_meta=self._durability_meta()
            )

    # ------------------------------------------------------------------
    # Endpoint handlers (same surface as TraceServer)
    # ------------------------------------------------------------------
    def handle_topk(self, payload: object) -> Response:
        """``POST /v1/topk`` routed to the worker pool.

        Single queries go through the request coalescer (same admission
        control and windowed batching as in-process); batch requests are
        scatter-gathered across the pool directly.  Sampling happens here,
        exactly as in :meth:`TraceServer.handle_topk`; sampled traces
        additionally stitch in the worker-process spans shipped back over
        the wire.
        """
        trace = self.tracer.start_trace("request.topk")
        if trace is None:
            return self._answer_topk(payload, None)
        try:
            status, response = self._answer_topk(payload, trace.context())
        except BaseException:
            self.tracer.finish(trace, error=True)
            raise
        self.tracer.finish(trace, status=status, error=status >= 500)
        return status, response

    def _answer_topk(self, payload: object, trace: Optional[SpanContext]) -> Response:
        """The actual ``/v1/topk`` logic; ``trace`` is ``None`` when unsampled."""
        try:
            request = protocol.parse_topk_request(payload)
        except protocol.ProtocolError as exc:
            return exc.status, protocol.error_payload(str(exc))
        if trace is not None:
            trace.parent.attributes["batch"] = request.batch
            trace.parent.attributes["queries"] = len(request.entities)
        entity = request.entities[0]
        if self._closed:
            return 503, protocol.error_payload("the server is shutting down")
        # Unknown entities answer 404 from the owner's (flushed) dataset --
        # the same pre-check as in-process serving.  The dataset only gains
        # entities at a flush, and every flush publishes, so an entity
        # passing this check exists in the generation any worker will adopt
        # by the time it answers.
        with self.engine_lock:
            unknown = [
                candidate
                for candidate in request.entities
                if candidate not in self.engine.dataset
            ]
        if unknown:
            return 404, protocol.error_payload(f"unknown entity {unknown[0]!r}")
        try:
            if request.batch:
                payloads = self.pool.scatter_topk(
                    request.entities,
                    request.k,
                    request.approximation,
                    traces=[trace] * len(request.entities) if trace is not None else None,
                )
            else:
                payloads = [
                    self.coalescer.submit(
                        entity,
                        k=request.k,
                        approximation=request.approximation,
                        trace=trace,
                    )
                ]
        except QueueFullError as exc:
            return 429, protocol.error_payload(str(exc))
        except KeyError:
            return 404, protocol.error_payload(f"unknown entity {entity!r}")
        except RuntimeError as exc:
            return 503, protocol.error_payload(str(exc))
        if not request.batch:
            return 200, payloads[0]
        return 200, {"results": payloads}

    def handle_events(self, payload: object) -> Response:
        """``POST /v1/events``: the owner's write path, unchanged.

        The flush hook publishes a generation before the response is
        written, so acknowledged flushed writes are visible to every
        subsequent query.
        """
        return self.owner.handle_events(payload)

    def handle_healthz(self) -> Response:
        """``GET /v1/healthz`` plus the deployment's process topology.

        Beyond the single-process probe: worker count, the current
        snapshot ``generation`` id (which generation queries observe at
        minimum), and the cumulative worker ``respawns`` counter -- a
        non-zero delta between probes means workers are crashing, which a
        liveness check on the front-end alone would never surface.
        """
        status, payload = self.owner.handle_healthz()
        payload["workers"] = self.pool.num_workers
        payload["generation"] = self.store.generation
        payload["respawns"] = self.pool.stats_snapshot()["respawns"]
        return status, payload

    def handle_stats(self) -> Response:
        """``GET /v1/stats`` with a ``workers`` section for the pool.

        Assembled by the owner's single-acquisition-order consistent read
        (see :meth:`TraceServer.handle_stats`), substituting the
        pool-facing coalescer for the owner's idle one.
        """
        payload = self.owner._stats_payload(coalescer=self.coalescer)
        payload["workers"] = self.pool.stats_snapshot()
        payload["generation"] = self.store.generation
        return 200, payload

    def handle_metrics(self) -> Tuple[int, str]:
        """``GET /metrics`` with worker-pool and generation families appended."""
        families = self.owner._metric_families(coalescer=self.coalescer)
        pool_stats = self.pool.stats_snapshot()
        families.append(
            exposition.MetricFamily(
                name="repro_worker_pool_workers",
                kind="gauge",
                help="Configured query worker processes.",
                samples=[("", {}, float(pool_stats["workers"]))],
            )
        )
        families.append(
            exposition.MetricFamily(
                name="repro_worker_events_total",
                kind="counter",
                help="Worker pool activity: answered requests, retries after a "
                "worker death, respawned workers, respawn storms (a worker "
                "repeatedly dying on startup).",
                samples=[
                    ("", {"event": "requests"}, float(pool_stats["requests"])),
                    ("", {"event": "retries"}, float(pool_stats["retries"])),
                    ("", {"event": "respawns"}, float(pool_stats["respawns"])),
                    ("", {"event": "respawn_storms"}, float(pool_stats["respawn_storms"])),
                ],
            )
        )
        families.append(
            exposition.MetricFamily(
                name="repro_generation_id",
                kind="gauge",
                help="Newest published snapshot generation.",
                samples=[("", {}, float(self.store.generation))],
            )
        )
        generation_age = exposition.MetricFamily(
            name="repro_generation_age_seconds",
            kind="gauge",
            help="Seconds since the last generation publish (absent before "
            "the first; a growing age with buffered ingest events means "
            "workers answer from a stale snapshot).",
        )
        if self.store.last_publish_monotonic is not None:
            generation_age.samples.append(
                ("", {}, time.monotonic() - self.store.last_publish_monotonic)
            )
        families.append(generation_age)
        return 200, exposition.render_exposition(families)

    def handle_debug_slow(self) -> Response:
        """``GET /v1/debug/slow``: the shared tracer's slow-query log."""
        return self.owner.handle_debug_slow()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Graceful shutdown: drain reads, flush writes, stop the workers.

        The read coalescer drains first (in-flight queries answer from the
        still-running pool), then the owner flushes -- publishing a final
        generation, so the store's newest generation holds every accepted
        write -- and only then are the workers terminated and the private
        store removed.
        """
        if self._closed:
            return
        self._closed = True
        self.coalescer.close()
        self.owner.close()
        self.pool.close()
        if self._owns_store:
            shutil.rmtree(self.store.root, ignore_errors=True)

    def __enter__(self) -> "FrontendServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
