"""The network serving daemon: HTTP/JSON front-end over the engines.

Everything below this package serves queries *in-process*; this package is
the network boundary that the ROADMAP's "heavy traffic" north-star needs.
It is standard-library only (``http.server``) and splits into two tiers.

The single-process daemon (``repro serve``):

* :mod:`~repro.server.protocol` -- the wire format: request validation
  into dataclasses, canonical (byte-stable) JSON response payloads;
* :mod:`~repro.server.coalescer` -- :class:`RequestCoalescer`: concurrent
  top-k requests arriving within a small window are answered by **one**
  ``top_k_batch`` call, with a bounded admission queue (full → HTTP 429);
* :mod:`~repro.server.metrics` -- per-endpoint request counters and
  fixed-bucket latency histograms behind one lock;
* :mod:`~repro.server.app` -- :class:`TraceServer` (the transport-free
  core: ``handle_topk`` / ``handle_events`` / ``handle_healthz`` /
  ``handle_stats``) and :func:`build_http_server` (the
  ``ThreadingHTTPServer`` skin the ``repro serve`` CLI runs).

The multi-process tier (``repro serve --workers N``), which escapes the
GIL by running read-only query workers in their own processes over shared
memory-mapped snapshot generations:

* :mod:`~repro.server.generation` -- :class:`GenerationStore`: the
  single-writer publish / many-reader adopt protocol over immutable
  snapshot directories plus an atomically swapped ``CURRENT`` file;
* :mod:`~repro.server.workers` -- the worker process entry point
  (``python -m repro.server.workers``) and its length-prefixed JSON frame
  protocol over Unix sockets;
* :mod:`~repro.server.frontend` -- :class:`FrontendServer`: the owner
  process (writes, generation publishing) plus a :class:`WorkerPool`
  doing admission control, coalescing, scatter-gather, and
  respawn-on-death over the worker sockets.  Drop-in for
  :class:`TraceServer` under :func:`build_http_server`.

The serving contract -- request/response schemas, status codes, the
coalescing and consistency semantics (including which generation a request
can observe) -- is documented in ``docs/SERVING.md``; the
concurrency-equivalence guarantee (daemon responses byte-identical to the
in-process API, in both tiers) is pinned by
``tests/test_server_equivalence.py``.
"""

from repro.server.app import TraceServer, build_http_server
from repro.server.coalescer import CoalescerStats, QueueFullError, RequestCoalescer
from repro.server.frontend import FrontendServer, WorkerDiedError, WorkerPool
from repro.server.generation import GenerationStore
from repro.server.metrics import LatencyHistogram, ServerMetrics
from repro.server.protocol import (
    EventsRequest,
    ProtocolError,
    TopKRequest,
    parse_events_request,
    parse_topk_request,
)

__all__ = [
    "CoalescerStats",
    "EventsRequest",
    "FrontendServer",
    "GenerationStore",
    "LatencyHistogram",
    "ProtocolError",
    "QueueFullError",
    "RequestCoalescer",
    "ServerMetrics",
    "TopKRequest",
    "TraceServer",
    "WorkerDiedError",
    "WorkerPool",
    "build_http_server",
    "parse_events_request",
    "parse_topk_request",
]
