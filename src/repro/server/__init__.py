"""The network serving daemon: HTTP/JSON front-end over the engines.

Everything below this package serves queries *in-process*; this package is
the network boundary that the ROADMAP's "heavy traffic" north-star needs.
It is standard-library only (``http.server``) and splits into four modules:

* :mod:`~repro.server.protocol` -- the wire format: request validation
  into dataclasses, canonical (byte-stable) JSON response payloads;
* :mod:`~repro.server.coalescer` -- :class:`RequestCoalescer`: concurrent
  top-k requests arriving within a small window are answered by **one**
  ``top_k_batch`` call, with a bounded admission queue (full → HTTP 429);
* :mod:`~repro.server.metrics` -- per-endpoint request counters and
  fixed-bucket latency histograms behind one lock;
* :mod:`~repro.server.app` -- :class:`TraceServer` (the transport-free
  core: ``handle_topk`` / ``handle_events`` / ``handle_healthz`` /
  ``handle_stats``) and :func:`build_http_server` (the
  ``ThreadingHTTPServer`` skin the ``repro serve`` CLI runs).

The serving contract -- request/response schemas, status codes, the
coalescing and consistency semantics -- is documented in
``docs/SERVING.md``; the concurrency-equivalence guarantee (daemon
responses byte-identical to the in-process API) is pinned by
``tests/test_server_equivalence.py``.
"""

from repro.server.app import TraceServer, build_http_server
from repro.server.coalescer import CoalescerStats, QueueFullError, RequestCoalescer
from repro.server.metrics import LatencyHistogram, ServerMetrics
from repro.server.protocol import (
    EventsRequest,
    ProtocolError,
    TopKRequest,
    parse_events_request,
    parse_topk_request,
)

__all__ = [
    "CoalescerStats",
    "EventsRequest",
    "LatencyHistogram",
    "ProtocolError",
    "QueueFullError",
    "RequestCoalescer",
    "ServerMetrics",
    "TopKRequest",
    "TraceServer",
    "build_http_server",
    "parse_events_request",
    "parse_topk_request",
]
