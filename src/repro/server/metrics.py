"""Serving metrics: request counters and latency histograms.

The daemon's ``GET /v1/stats`` endpoint is assembled from three sources --
engine-side runtime stats (cache hit rate, shard sizes, loose-operation
counters), ingest/coalescer counters, and the per-endpoint request metrics
collected here.  This module owns the last kind.

Design constraints, in order:

* **correct under concurrency** -- every handler thread of the
  ``ThreadingHTTPServer`` records observations, so all mutation and all
  snapshotting happens under one lock;
* **constant memory** -- latencies go into fixed-boundary histograms
  (:data:`LATENCY_BUCKETS_MS`), never into unbounded lists, so a soak test
  cannot grow the metrics;
* **snapshot, don't expose** -- readers get plain dicts copied under the
  lock (:meth:`ServerMetrics.snapshot`), never live mutable state.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Tuple

__all__ = ["LATENCY_BUCKETS_MS", "LatencyHistogram", "ServerMetrics"]

#: Upper bucket edges of the latency histograms, in milliseconds.  The last
#: implicit bucket is unbounded (``+inf``); the edges are roughly
#: logarithmic, matching the spread between a cache hit (sub-millisecond)
#: and a cold sharded fan-out (tens to hundreds of milliseconds).
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 5000.0,
)


class LatencyHistogram:
    """A fixed-bucket latency histogram with count/sum/max aggregates.

    Not thread-safe on its own; :class:`ServerMetrics` serialises access.

    >>> histogram = LatencyHistogram()
    >>> histogram.observe(0.004)          # 4 ms
    >>> histogram.observe(0.030)          # 30 ms
    >>> histogram.count, histogram.bucket_counts[3]   # 4 ms falls in <=5 ms
    (2, 1)
    """

    __slots__ = ("bucket_counts", "count", "total_seconds", "max_seconds")

    def __init__(self) -> None:
        #: One count per edge in :data:`LATENCY_BUCKETS_MS` plus the final
        #: unbounded bucket.
        self.bucket_counts: List[int] = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency observation."""
        self.bucket_counts[bisect_left(LATENCY_BUCKETS_MS, seconds * 1000.0)] += 1
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        """Average observed latency (0 when nothing was observed)."""
        if not self.count:
            return 0.0
        return self.total_seconds / self.count

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict copy suitable for JSON serialisation.

        Buckets are keyed by their upper edge (``"le_<ms>"``; the unbounded
        bucket is ``"le_inf"``) so the output is self-describing.
        """
        buckets = {
            f"le_{edge:g}ms": count
            for edge, count in zip(LATENCY_BUCKETS_MS, self.bucket_counts)
        }
        buckets["le_inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "mean_ms": self.mean_seconds * 1000.0,
            "max_ms": self.max_seconds * 1000.0,
            "buckets": buckets,
        }


class ServerMetrics:
    """Thread-safe per-endpoint request metrics of one daemon.

    Each endpoint accumulates a request count, a per-status-code breakdown,
    and a latency histogram; :meth:`snapshot` returns the whole structure as
    plain dicts copied under the lock.

    >>> metrics = ServerMetrics()
    >>> metrics.observe("/v1/topk", status=200, seconds=0.003)
    >>> metrics.observe("/v1/topk", status=429, seconds=0.0001)
    >>> snapshot = metrics.snapshot()
    >>> snapshot["/v1/topk"]["requests"], snapshot["/v1/topk"]["status"]["429"]
    (2, 1)
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: Dict[str, int] = {}
        self._status: Dict[str, Dict[str, int]] = {}
        self._latency: Dict[str, LatencyHistogram] = {}

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one answered request (any status, including errors)."""
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
            by_status = self._status.setdefault(endpoint, {})
            key = str(status)
            by_status[key] = by_status.get(key, 0) + 1
            histogram = self._latency.get(endpoint)
            if histogram is None:
                histogram = self._latency[endpoint] = LatencyHistogram()
            histogram.observe(seconds)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-endpoint ``{requests, status, latency}`` dicts (copied)."""
        with self._lock:
            return {
                endpoint: {
                    "requests": self._requests[endpoint],
                    "status": dict(self._status[endpoint]),
                    "latency": self._latency[endpoint].snapshot(),
                }
                for endpoint in sorted(self._requests)
            }
