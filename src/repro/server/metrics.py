"""Serving metrics: request counters and latency histograms.

The daemon's ``GET /v1/stats`` endpoint is assembled from three sources --
engine-side runtime stats (cache hit rate, shard sizes, loose-operation
counters), ingest/coalescer counters, and the per-endpoint request metrics
collected here.  This module owns the last kind; ``GET /metrics`` renders
the same histograms in Prometheus exposition format via
:meth:`ServerMetrics.raw_snapshot`.

Design constraints, in order:

* **correct under concurrency** -- every handler thread of the
  ``ThreadingHTTPServer`` records observations, so all mutation and all
  snapshotting happens under one lock;
* **constant memory** -- latencies go into fixed-boundary histograms
  (:data:`LATENCY_BUCKETS`), never into unbounded lists, so a soak test
  cannot grow the metrics;
* **snapshot, don't expose** -- readers get plain dicts copied under the
  lock (:meth:`ServerMetrics.snapshot`), never live mutable state;
* **one unit end to end** -- everything is **seconds**: ``observe()``
  takes seconds, the bucket edges are in seconds, and snapshots report
  ``mean_seconds``/``max_seconds``.  (Earlier versions kept edges in
  milliseconds behind a seconds API, a unit seam that made the exposition
  layer convert on every read.)
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List

from repro.obs.trace import LATENCY_BUCKETS

__all__ = ["LATENCY_BUCKETS", "LatencyHistogram", "ServerMetrics"]

# LATENCY_BUCKETS is re-exported from :mod:`repro.obs.trace` so the
# per-endpoint histograms and the tracer's per-stage histograms share one
# set of edges: upper bucket edges in **seconds**, roughly logarithmic
# from 0.5 ms (a cache hit) to 5 s, with a final implicit ``+inf`` bucket.


class LatencyHistogram:
    """A fixed-bucket latency histogram with count/sum/max aggregates.

    Not thread-safe on its own; :class:`ServerMetrics` serialises access.

    >>> histogram = LatencyHistogram()
    >>> histogram.observe(0.004)          # 4 ms
    >>> histogram.observe(0.030)          # 30 ms
    >>> histogram.count, histogram.bucket_counts[3]   # 4 ms falls in <=5 ms
    (2, 1)
    """

    __slots__ = ("bucket_counts", "count", "total_seconds", "max_seconds")

    def __init__(self) -> None:
        #: One count per edge in :data:`LATENCY_BUCKETS` plus the final
        #: unbounded bucket.
        self.bucket_counts: List[int] = [0] * (len(LATENCY_BUCKETS) + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency observation, in seconds."""
        self.bucket_counts[bisect_left(LATENCY_BUCKETS, seconds)] += 1
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        """Average observed latency (0 when nothing was observed)."""
        if not self.count:
            return 0.0
        return self.total_seconds / self.count

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict copy suitable for JSON serialisation.

        Buckets are keyed by their upper edge in seconds (``"le_<edge>"``;
        the unbounded bucket is ``"le_inf"``) so the output is
        self-describing.
        """
        buckets = {
            f"le_{edge:g}": count
            for edge, count in zip(LATENCY_BUCKETS, self.bucket_counts)
        }
        buckets["le_inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "mean_seconds": self.mean_seconds,
            "max_seconds": self.max_seconds,
            "buckets": buckets,
        }


class ServerMetrics:
    """Thread-safe per-endpoint request metrics of one daemon.

    Each endpoint accumulates a request count, a per-status-code breakdown,
    and a latency histogram; :meth:`snapshot` returns the whole structure as
    plain dicts copied under the lock.

    >>> metrics = ServerMetrics()
    >>> metrics.observe("/v1/topk", status=200, seconds=0.003)
    >>> metrics.observe("/v1/topk", status=429, seconds=0.0001)
    >>> snapshot = metrics.snapshot()
    >>> snapshot["/v1/topk"]["requests"], snapshot["/v1/topk"]["status"]["429"]
    (2, 1)
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: Dict[str, int] = {}
        self._status: Dict[str, Dict[str, int]] = {}
        self._latency: Dict[str, LatencyHistogram] = {}

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one answered request (any status, including errors)."""
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
            by_status = self._status.setdefault(endpoint, {})
            key = str(status)
            by_status[key] = by_status.get(key, 0) + 1
            histogram = self._latency.get(endpoint)
            if histogram is None:
                histogram = self._latency[endpoint] = LatencyHistogram()
            histogram.observe(seconds)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-endpoint ``{requests, status, latency}`` dicts (copied)."""
        with self._lock:
            return {
                endpoint: {
                    "requests": self._requests[endpoint],
                    "status": dict(self._status[endpoint]),
                    "latency": self._latency[endpoint].snapshot(),
                }
                for endpoint in sorted(self._requests)
            }

    def raw_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-endpoint raw aggregates for the Prometheus exposition layer.

        Unlike :meth:`snapshot`, bucket counts come back as a plain list
        aligned with :data:`LATENCY_BUCKETS` (plus the overflow slot) so
        the renderer can produce cumulative ``_bucket`` series without
        re-parsing ``le_*`` keys.
        """
        with self._lock:
            return {
                endpoint: {
                    "requests": self._requests[endpoint],
                    "status": dict(self._status[endpoint]),
                    "bucket_counts": list(self._latency[endpoint].bucket_counts),
                    "total_seconds": self._latency[endpoint].total_seconds,
                    "max_seconds": self._latency[endpoint].max_seconds,
                    "count": self._latency[endpoint].count,
                }
                for endpoint in sorted(self._requests)
            }
