"""Snapshot generations: the publish/adopt protocol of the multi-process tier.

The multi-process daemon (see :mod:`repro.server.frontend` and
:mod:`repro.server.workers`) separates the single *owner* of the index --
the front-end process, which applies every write -- from N read-only query
workers in their own processes.  The two sides never share Python objects;
they share **immutable snapshot generations** on disk:

* after every index-changing flush the owner calls :meth:`GenerationStore.publish`,
  which writes a full engine snapshot into a fresh ``gen-NNNNNN/`` directory
  (through the existing atomic staged-save machinery of
  :mod:`repro.storage.snapshot`) and then atomically replaces the store's
  ``CURRENT`` file -- a tiny JSON document naming the newest generation;
* a worker calls :meth:`GenerationStore.current` at each request boundary
  (one small-file read) and, when the generation moved, loads the named
  snapshot with memory-mapped columnar arrays
  (:func:`~repro.core.columnar.load_npz_mmap`), so all workers share one
  physical copy of the compiled arrays through the page cache.

Because ``CURRENT`` is swapped with ``os.replace`` *after* the snapshot
directory is complete, a reader can never observe a generation that is not
fully on disk; because snapshot restore is bitwise-identical (pinned by the
snapshot suites), every worker answering from generation ``g`` produces
exactly the bytes the owner's in-process engine would have produced at the
flush that published ``g``.  Old generations are pruned down to the last
:data:`KEEP_GENERATIONS`; a worker racing a prune simply re-reads
``CURRENT`` and retries (see :meth:`GenerationStore.load_current`).
"""

from __future__ import annotations

import json
import os
import re
import shutil
import time
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.service.sharded import SHARDED_SNAPSHOT_FORMAT, ShardedEngine
from repro.storage.snapshot import (
    SnapshotError,
    load_engine_snapshot,
    read_manifest,
)

__all__ = ["GenerationStore", "KEEP_GENERATIONS"]

PathLike = Union[str, Path]

#: Generations retained after a publish: the current one plus one older, so
#: a worker that read ``CURRENT`` just before a publish still finds the
#: directory it was told about.
KEEP_GENERATIONS = 2

_CURRENT_NAME = "CURRENT"
_GENERATION_PATTERN = re.compile(r"^gen-(\d{6})$")


class GenerationStore:
    """One directory of immutable snapshot generations plus a ``CURRENT`` file.

    Owner side: :meth:`publish`.  Worker side: :meth:`current` and
    :meth:`load_current`.  The store is safe for one writer and any number
    of reader processes on one host; there is no cross-host coordination.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        current = self.current()
        #: The newest generation this process knows about (0 = none yet).
        self.generation = current[0] if current is not None else 0
        #: ``time.monotonic()`` of this process's most recent :meth:`publish`
        #: (``None`` before the first).  Feeds the serving tier's
        #: generation-age gauge: a large age with buffered ingest events
        #: means workers are answering from an old snapshot.
        self.last_publish_monotonic: Optional[float] = None

    # ------------------------------------------------------------------
    # Owner side
    # ------------------------------------------------------------------
    def publish(self, engine) -> int:
        """Snapshot ``engine`` as the next generation and point ``CURRENT`` at it.

        ``engine`` is a built :class:`~repro.core.engine.TraceQueryEngine`
        or :class:`~repro.service.sharded.ShardedEngine`; both ``save``
        through the staged atomic-swap path, so a failed save leaves the
        store unchanged and ``CURRENT`` never names a partial directory.
        The caller must hold whatever lock protects the engine from
        concurrent mutation (the serving front-end publishes from a flush
        hook, under the engine lock).
        """
        generation = self.generation + 1
        name = f"gen-{generation:06d}"
        engine.save(self.root / name)
        document = json.dumps({"generation": generation, "path": name})
        staged = self.root / f".{_CURRENT_NAME}.tmp"
        with open(staged, "w", encoding="utf-8") as handle:
            handle.write(document)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staged, self.root / _CURRENT_NAME)
        self.generation = generation
        self.last_publish_monotonic = time.monotonic()
        self._prune(keep_newest=generation)
        return generation

    def _prune(self, keep_newest: int) -> None:
        """Drop generation directories older than the retained window."""
        floor = keep_newest - KEEP_GENERATIONS + 1
        for entry in self.root.iterdir():
            match = _GENERATION_PATTERN.match(entry.name)
            if match and int(match.group(1)) < floor:
                shutil.rmtree(entry, ignore_errors=True)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def current(self) -> Optional[Tuple[int, Path]]:
        """The newest published ``(generation, snapshot directory)``, or ``None``.

        ``CURRENT`` is written via ``os.replace``, so this read observes
        either a complete previous document or a complete new one -- never
        a torn write.  A missing file means nothing was published yet.
        """
        try:
            with open(self.root / _CURRENT_NAME, encoding="utf-8") as handle:
                document = json.load(handle)
            return int(document["generation"]), self.root / str(document["path"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def load_current(self, newer_than: int = 0, timeout: float = 30.0):
        """Load the newest generation as a query-ready engine (worker side).

        Returns ``(generation, engine)`` for the newest generation strictly
        newer than ``newer_than``, or ``None`` when nothing newer is
        published.  Retries for up to ``timeout`` seconds around the two
        benign races -- ``CURRENT`` not yet written at worker start-up, and
        a generation pruned between reading ``CURRENT`` and opening its
        files -- then raises :class:`~repro.storage.snapshot.SnapshotError`.

        Single and sharded snapshots are auto-detected from the manifest;
        both load with memory-mapped columnar arrays.
        """
        deadline = time.monotonic() + timeout
        while True:
            info = self.current()
            if info is not None:
                generation, directory = info
                if generation <= newer_than:
                    return None
                try:
                    return generation, _load_any(directory)
                except SnapshotError:
                    # Publish/prune race: the directory vanished or was not
                    # yet complete under a crashed writer.  Re-read CURRENT.
                    if time.monotonic() >= deadline:
                        raise
            elif newer_than:
                # A store that once had generations never goes back to
                # having none; treat a vanished CURRENT as fatal.
                raise SnapshotError(f"generation store {self.root} lost its CURRENT file")
            if time.monotonic() >= deadline:
                raise SnapshotError(
                    f"no generation published in {self.root} within {timeout:.0f}s"
                )
            time.sleep(0.02)


def _load_any(directory: Path):
    """Load a single or sharded snapshot, memory-mapping the columnar arrays."""
    manifest = read_manifest(directory)
    if manifest.get("format") == SHARDED_SNAPSHOT_FORMAT:
        return ShardedEngine.load(directory, mmap_columnar=True)
    return load_engine_snapshot(directory, mmap_columnar=True)
