"""Snapshot generations: the publish/adopt protocol of the multi-process tier.

The multi-process daemon (see :mod:`repro.server.frontend` and
:mod:`repro.server.workers`) separates the single *owner* of the index --
the front-end process, which applies every write -- from N read-only query
workers in their own processes.  The two sides never share Python objects;
they share **immutable snapshot generations** on disk:

* after every index-changing flush the owner calls :meth:`GenerationStore.publish`,
  which writes a full engine snapshot into a fresh ``gen-NNNNNN/`` directory
  (through the existing atomic staged-save machinery of
  :mod:`repro.storage.snapshot`) and then atomically replaces the store's
  ``CURRENT`` file -- a tiny JSON document naming the newest generation;
* a worker calls :meth:`GenerationStore.current` at each request boundary
  (one small-file read) and, when the generation moved, loads the named
  snapshot with memory-mapped columnar arrays
  (:func:`~repro.core.columnar.load_npz_mmap`), so all workers share one
  physical copy of the compiled arrays through the page cache.

Because ``CURRENT`` is swapped with ``os.replace`` *after* the snapshot
directory is complete, a reader can never observe a generation that is not
fully on disk; because snapshot restore is bitwise-identical (pinned by the
snapshot suites), every worker answering from generation ``g`` produces
exactly the bytes the owner's in-process engine would have produced at the
flush that published ``g``.  Old generations are pruned down to the last
:data:`KEEP_GENERATIONS`; a worker racing a prune simply re-reads
``CURRENT`` and retries (see :meth:`GenerationStore.load_current`).

Delta generations
-----------------
Writing a full snapshot per flush costs time proportional to the *dataset*;
the flush itself costs time proportional to the *batch*.  Delta generations
(:meth:`GenerationStore.publish_update`) restore that proportionality: a
generation may instead be a tiny ``delta-NNNNNN.json`` document recording
exactly the maintenance operations of one flush -- the appended events, the
expiry cutoff (if any), and whether a compaction ran.  Applying those
operations to an engine standing at the previous generation is
deterministic, so a reader reconstructs generation ``g`` bit for bit by
loading the newest *full* snapshot at or below ``g`` and replaying the
delta chain above it; a worker already standing on the chain just applies
the new suffix in place (:meth:`GenerationStore.catch_up`) -- which the
incremental columnar patch (:meth:`repro.core.columnar.ColumnarTree.patch`)
turns into sub-rebuild work.  Every :data:`DELTA_CHAIN_LIMIT` deltas the
owner publishes a fresh full snapshot, bounding both recovery time and the
chain a cold-starting worker must replay; see ``docs/DURABILITY.md``.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.service.sharded import SHARDED_SNAPSHOT_FORMAT, ShardedEngine
from repro.storage.snapshot import (
    SnapshotError,
    load_engine_snapshot,
    read_manifest,
)
from repro.traces.events import PresenceInstance

__all__ = ["DELTA_CHAIN_LIMIT", "GenerationStore", "KEEP_GENERATIONS", "SnapshotDelta"]

PathLike = Union[str, Path]

#: Generations retained after a publish: the current one plus one older, so
#: a worker that read ``CURRENT`` just before a publish still finds the
#: directory it was told about.  With deltas the unit of retention is the
#: *chain* (a full snapshot plus the deltas above it): the newest chain and
#: the previous one are kept.
KEEP_GENERATIONS = 2

#: Default maximum delta-chain length: a full snapshot is forced once this
#: many consecutive delta generations were published, bounding the replay a
#: cold start must perform.
DELTA_CHAIN_LIMIT = 8

_CURRENT_NAME = "CURRENT"
_GENERATION_PATTERN = re.compile(r"^gen-(\d{6})$")
_DELTA_PATTERN = re.compile(r"^delta-(\d{6})\.json$")


@dataclass
class SnapshotDelta:
    """The maintenance operations of one flush, as a publishable delta.

    Applying these to an engine standing at the previous generation --
    ``add_records(events)``, then ``expire_events(cutoff)`` when set, then
    ``compact()`` when flagged, the exact order
    :meth:`repro.streaming.ingestor.EventIngestor.flush` performs them --
    reproduces the owner's post-flush engine bit for bit.
    """

    #: Events appended by the flush (post late-filter, submission order).
    events: List[PresenceInstance] = field(default_factory=list)
    #: Expiry cutoff applied by the flush's window advance, ``None`` if none.
    cutoff: Optional[int] = None
    #: Whether the flush triggered a compaction.
    compacted: bool = False

    def is_empty(self) -> bool:
        """Whether applying this delta would leave the engine unchanged."""
        return not self.events and self.cutoff is None and not self.compacted

    def to_payload(self) -> Dict[str, object]:
        """JSON-serialisable form written into ``delta-NNNNNN.json`` documents."""
        return {
            "events": [
                [presence.entity, presence.unit, presence.start, presence.end]
                for presence in self.events
            ],
            "cutoff": self.cutoff,
            "compacted": self.compacted,
        }

    @staticmethod
    def from_payload(payload: Dict[str, object]) -> "SnapshotDelta":
        """Rebuild a delta from the payload produced by :meth:`to_payload`."""
        return SnapshotDelta(
            events=[
                PresenceInstance(entity=entity, unit=unit, start=start, end=end)
                for entity, unit, start, end in payload.get("events", [])
            ],
            cutoff=payload.get("cutoff"),
            compacted=bool(payload.get("compacted", False)),
        )

    def apply(self, engine) -> None:
        """Replay these operations onto ``engine``, in flush order."""
        if self.events:
            engine.add_records(self.events)
        if self.cutoff is not None:
            engine.expire_events(self.cutoff)
        if self.compacted:
            engine.compact()


class GenerationStore:
    """One directory of immutable snapshot generations plus a ``CURRENT`` file.

    Owner side: :meth:`publish`.  Worker side: :meth:`current` and
    :meth:`load_current`.  The store is safe for one writer and any number
    of reader processes on one host; there is no cross-host coordination.
    """

    def __init__(self, root: PathLike, delta_limit: int = DELTA_CHAIN_LIMIT) -> None:
        if delta_limit < 0:
            raise ValueError(f"delta_limit must be >= 0, got {delta_limit}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Full snapshot forced after this many consecutive deltas
        #: (``0`` disables deltas entirely -- every publish is full).
        self.delta_limit = int(delta_limit)
        document = self._current_document()
        #: The newest generation this process knows about (0 = none yet).
        self.generation = int(document["generation"]) if document else 0
        #: Generation of the newest *full* snapshot (the delta chain's base).
        self.base_full = int(document.get("base", document["generation"])) if document else 0
        #: ``time.monotonic()`` of this process's most recent :meth:`publish`
        #: (``None`` before the first).  Feeds the serving tier's
        #: generation-age gauge: a large age with buffered ingest events
        #: means workers are answering from an old snapshot.
        self.last_publish_monotonic: Optional[float] = None

    # ------------------------------------------------------------------
    # Owner side
    # ------------------------------------------------------------------
    def publish(self, engine, extra_meta: Optional[Dict[str, object]] = None) -> int:
        """Snapshot ``engine`` as the next *full* generation.

        ``engine`` is a built :class:`~repro.core.engine.TraceQueryEngine`
        or :class:`~repro.service.sharded.ShardedEngine`; both ``save``
        through the staged atomic-swap path, so a failed save leaves the
        store unchanged and ``CURRENT`` never names a partial directory.
        The caller must hold whatever lock protects the engine from
        concurrent mutation (the serving front-end publishes from a flush
        hook, under the engine lock).  ``extra_meta`` lands in the snapshot
        manifest (see :func:`repro.storage.snapshot.save_engine_snapshot`).
        """
        generation = self.generation + 1
        previous_full = self.base_full
        name = f"gen-{generation:06d}"
        engine.save(self.root / name, extra_meta=extra_meta)
        self._swap_current(
            {"generation": generation, "path": name, "kind": "full", "base": generation}
        )
        self.generation = generation
        self.base_full = generation
        self.last_publish_monotonic = time.monotonic()
        self._prune(previous_full=previous_full)
        return generation

    def publish_update(
        self,
        engine,
        delta: Optional[SnapshotDelta] = None,
        extra_meta: Optional[Dict[str, object]] = None,
    ) -> int:
        """Publish the next generation, as a delta when one is possible.

        Falls back to a full :meth:`publish` when ``delta`` is ``None``
        (the caller could not describe the change operationally), when
        nothing full was ever published, or when the chain above the last
        full snapshot has reached :attr:`delta_limit`.  Otherwise writes a
        ``delta-NNNNNN.json`` document -- fsynced, then atomically named,
        then ``CURRENT`` swapped -- so readers observe either the previous
        generation or the complete new one, exactly as for full snapshots.
        """
        chain_length = self.generation - self.base_full
        if (
            delta is None
            or self.generation == 0
            or self.delta_limit == 0
            or chain_length >= self.delta_limit
        ):
            return self.publish(engine, extra_meta=extra_meta)
        generation = self.generation + 1
        name = f"delta-{generation:06d}.json"
        payload = delta.to_payload()
        payload["generation"] = generation
        payload["base"] = self.base_full
        if extra_meta is not None:
            payload["extra"] = dict(extra_meta)
        staged = self.root / f".{name}.tmp"
        with open(staged, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staged, self.root / name)
        self._swap_current(
            {"generation": generation, "path": name, "kind": "delta", "base": self.base_full}
        )
        self.generation = generation
        self.last_publish_monotonic = time.monotonic()
        return generation

    def _swap_current(self, document: Dict[str, object]) -> None:
        staged = self.root / f".{_CURRENT_NAME}.tmp"
        with open(staged, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staged, self.root / _CURRENT_NAME)

    def _prune(self, previous_full: int) -> None:
        """Drop chains older than the previous full snapshot's.

        Called after a full publish at generation ``G``: the newest chain is
        ``{G}`` and the previous chain is ``gen-P`` plus deltas ``P+1..G-1``
        where ``P = previous_full``.  Keeping both honours the
        :data:`KEEP_GENERATIONS` contract for readers that just fetched the
        old ``CURRENT``; everything below ``P`` is unreachable and removed.
        """
        for entry in self.root.iterdir():
            match = _GENERATION_PATTERN.match(entry.name)
            if match and int(match.group(1)) < previous_full:
                shutil.rmtree(entry, ignore_errors=True)
                continue
            match = _DELTA_PATTERN.match(entry.name)
            if match and int(match.group(1)) <= previous_full:
                entry.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _current_document(self) -> Optional[Dict[str, object]]:
        """The parsed ``CURRENT`` document, or ``None`` when unreadable."""
        try:
            with open(self.root / _CURRENT_NAME, encoding="utf-8") as handle:
                document = json.load(handle)
            int(document["generation"])
            str(document["path"])
            return document
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def current(self) -> Optional[Tuple[int, Path]]:
        """The newest published ``(generation, path)``, or ``None``.

        The path names a snapshot directory for a full generation and a
        ``delta-NNNNNN.json`` document for a delta one.  ``CURRENT`` is
        written via ``os.replace``, so this read observes either a complete
        previous document or a complete new one -- never a torn write.  A
        missing file means nothing was published yet.
        """
        document = self._current_document()
        if document is None:
            return None
        return int(document["generation"]), self.root / str(document["path"])

    def _read_delta(self, generation: int) -> Dict[str, object]:
        path = self.root / f"delta-{generation:06d}.json"
        try:
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"unreadable delta document {path}: {exc}") from exc

    def _apply_chain(self, engine, start: int, target: int) -> None:
        """Apply delta documents ``start..target`` (inclusive) onto ``engine``."""
        for generation in range(start, target + 1):
            SnapshotDelta.from_payload(self._read_delta(generation)).apply(engine)

    def load_current(self, newer_than: int = 0, timeout: float = 30.0):
        """Load the newest generation as a query-ready engine (worker side).

        Returns ``(generation, engine)`` for the newest generation strictly
        newer than ``newer_than``, or ``None`` when nothing newer is
        published.  A delta generation is materialised by loading its chain's
        full snapshot and replaying the delta documents above it -- the
        result is bit-identical to the owner's engine at that generation.
        Retries for up to ``timeout`` seconds around the two benign races --
        ``CURRENT`` not yet written at worker start-up, and a chain pruned
        between reading ``CURRENT`` and opening its files -- then raises
        :class:`~repro.storage.snapshot.SnapshotError`.

        Single and sharded snapshots are auto-detected from the manifest;
        both load with memory-mapped columnar arrays.
        """
        deadline = time.monotonic() + timeout
        while True:
            document = self._current_document()
            if document is not None:
                generation = int(document["generation"])
                if generation <= newer_than:
                    return None
                base = int(document.get("base", generation))
                try:
                    if document.get("kind") == "delta":
                        engine = _load_any(self.root / f"gen-{base:06d}")
                        self._apply_chain(engine, base + 1, generation)
                    else:
                        engine = _load_any(self.root / str(document["path"]))
                    return generation, engine
                except SnapshotError:
                    # Publish/prune race: the directory vanished or was not
                    # yet complete under a crashed writer.  Re-read CURRENT.
                    if time.monotonic() >= deadline:
                        raise
            elif newer_than:
                # A store that once had generations never goes back to
                # having none; treat a vanished CURRENT as fatal.
                raise SnapshotError(f"generation store {self.root} lost its CURRENT file")
            if time.monotonic() >= deadline:
                raise SnapshotError(
                    f"no generation published in {self.root} within {timeout:.0f}s"
                )
            time.sleep(0.02)

    def catch_up(self, engine, generation: int) -> Optional[int]:
        """Advance ``engine`` (standing at ``generation``) along the delta chain.

        When the newest generation is a delta whose chain's full base is at
        or below ``generation``, the missing delta documents are applied to
        ``engine`` *in place* -- no snapshot reload -- and the new generation
        is returned.  Returns ``None`` when nothing newer is published, when
        the newest generation is a full snapshot, or when the chain no longer
        reaches back to ``generation`` (the caller must
        :meth:`load_current` instead).  This is the cheap worker refresh:
        one flush's operations plus an incremental kernel patch, instead of
        a full snapshot load.
        """
        document = self._current_document()
        if document is None:
            return None
        target = int(document["generation"])
        if target <= generation:
            return None
        if document.get("kind") != "delta":
            return None
        base = int(document.get("base", target))
        if base > generation:
            return None
        self._apply_chain(engine, generation + 1, target)
        return target

    def current_meta(self) -> Optional[Dict[str, object]]:
        """The ``extra`` metadata of the newest generation, or ``None``.

        For a full generation this reads the snapshot manifest's ``extra``
        key; for a delta generation, the delta document's.  The serving
        owner stamps its WAL position and stream state here, which is what
        crash recovery needs before replaying the log.
        """
        document = self._current_document()
        if document is None:
            return None
        try:
            if document.get("kind") == "delta":
                return self._read_delta(int(document["generation"])).get("extra")
            manifest = read_manifest(self.root / str(document["path"]))
            return manifest.get("extra")
        except SnapshotError:
            return None


def _load_any(directory: Path):
    """Load a single or sharded snapshot, memory-mapping the columnar arrays."""
    manifest = read_manifest(directory)
    if manifest.get("format") == SHARDED_SNAPSHOT_FORMAT:
        return ShardedEngine.load(directory, mmap_columnar=True)
    return load_engine_snapshot(directory, mmap_columnar=True)
