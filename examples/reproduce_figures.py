#!/usr/bin/env python3
"""Regenerate every table/figure of the paper's evaluation chapter in one go.

This drives the same experiment generators the benchmarks use
(``repro.experiments.figures``) and prints one text table per figure; pass
``--scale tiny|small|medium`` to trade runtime for fidelity and ``--only``
to regenerate a subset, e.g.::

    python examples/reproduce_figures.py --scale tiny --only 7.3 7.7

CSV files are written next to the script when ``--csv-dir`` is given, which
is how EXPERIMENTS.md's numbers were produced.
"""

import argparse
import os
import time

from repro.experiments import figures

FIGURES = {
    "7.1": figures.figure_7_1,
    "7.2": figures.figure_7_2,
    "7.3": figures.figure_7_3,
    "7.4": figures.figure_7_4,
    "7.5": figures.figure_7_5,
    "7.6": figures.figure_7_6,
    "7.7": figures.figure_7_7,
    "7.8": figures.figure_7_8,
    "7.9": figures.figure_7_9,
    "ablation-bounds": figures.ablation_bound_mode,
    "ablation-grouping": figures.ablation_grouping,
    "ablation-pruned-sets": figures.ablation_pruned_sets,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=os.environ.get("REPRO_SCALE", "small"),
                        choices=["tiny", "small", "medium"])
    parser.add_argument("--only", nargs="*", default=None,
                        help="figure ids to regenerate (default: all)")
    parser.add_argument("--csv-dir", default=None, help="directory to write CSV files to")
    parser.add_argument("--max-rows", type=int, default=30,
                        help="max rows to print per table")
    args = parser.parse_args()

    selected = args.only or list(FIGURES)
    unknown = [name for name in selected if name not in FIGURES]
    if unknown:
        parser.error(f"unknown figure ids: {unknown}; choose from {sorted(FIGURES)}")

    if args.csv_dir:
        os.makedirs(args.csv_dir, exist_ok=True)

    for name in selected:
        generator = FIGURES[name]
        started = time.perf_counter()
        result = generator(scale=args.scale)
        elapsed = time.perf_counter() - started
        print(result.to_table(max_rows=args.max_rows))
        print(f"({len(result)} rows in {elapsed:.1f}s)\n")
        if args.csv_dir:
            path = os.path.join(args.csv_dir, f"figure_{name.replace('.', '_')}.csv")
            result.save_csv(path)
            print(f"wrote {path}\n")


if __name__ == "__main__":
    main()
