#!/usr/bin/env python3
"""Keeping the index fresh: incremental updates as new detections stream in.

WiFi controllers and cell towers deliver detections continuously.  Instead of
rebuilding the MinSigTree, the engine re-signs only the affected entities and
relocates them (Section 4.2.3 of the paper).  This example:

1. builds the engine over an initial WiFi log,
2. streams three batches of new detections -- some for known devices, some
   for brand-new ones,
3. shows that queries reflect the new data immediately and reports how long
   each incremental update took compared to a full rebuild,
4. demonstrates the disk-backed store and buffer pool for the same queries.

Run with ``python examples/streaming_updates.py``.
"""

import random
import time

from repro import PresenceInstance, TraceQueryEngine
from repro.mobility import generate_wifi_dataset
from repro.storage import DiskBackedTraceStore


def make_batch(dataset, rng, batch_size: int, new_entity_prefix: str):
    """A batch of detections: 70% for existing devices, 30% for new ones."""
    hotspots = dataset.hierarchy.base_units
    records = []
    for index in range(batch_size):
        if rng.random() < 0.7:
            entity = rng.choice(dataset.entities)
        else:
            entity = f"{new_entity_prefix}-{index}"
        hotspot = rng.choice(hotspots)
        start = rng.randrange(dataset.horizon - 1)
        records.append(PresenceInstance(entity, hotspot, start, start + 1))
    return records


def main() -> None:
    dataset, config = generate_wifi_dataset(
        num_devices=300, num_hotspots=150, horizon=24 * 10, mean_detections=30, seed=77
    )
    engine = TraceQueryEngine(dataset, num_hashes=256, seed=5).build()
    full_build_seconds = engine.last_build_seconds
    print(f"initial log: {dataset.describe()}")
    print(f"full index build: {full_build_seconds:.2f}s, {engine.tree.num_nodes} nodes")

    query_device = dataset.entities[0]
    before = engine.top_k(query_device, k=5)
    print(f"\ntop-5 associates of {query_device} before updates: "
          f"{[entity for entity, _ in before]}")

    rng = random.Random(123)
    for batch_number in range(1, 4):
        batch = make_batch(dataset, rng, batch_size=150, new_entity_prefix=f"batch{batch_number}")
        started = time.perf_counter()
        affected = engine.add_records(batch)
        elapsed = time.perf_counter() - started
        print(f"batch {batch_number}: {len(batch)} detections, "
              f"{len(affected)} entities re-indexed in {elapsed * 1000:.1f} ms "
              f"({elapsed / full_build_seconds * 100:.1f}% of a full rebuild)")

    after = engine.top_k(query_device, k=5)
    print(f"top-5 associates of {query_device} after updates:  "
          f"{[entity for entity, _ in after]}")
    print(f"index now holds {engine.tree.num_entities} entities "
          f"({engine.tree.num_nodes} nodes)")

    # The same queries through a disk-backed store with a small buffer pool.
    store = DiskBackedTraceStore(
        dataset, engine.tree.leaf_order(), memory_fraction=0.25
    )
    result = engine.top_k(query_device, k=5, sequence_fetcher=store.fetch_sequence)
    print(f"\ndisk-backed query: {store.page_misses} page misses, {store.page_hits} hits, "
          f"simulated I/O time {store.elapsed_ms:.1f} ms, "
          f"same answer: {[e for e, _ in result] == [e for e, _ in after]}")


if __name__ == "__main__":
    main()
