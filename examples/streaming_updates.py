#!/usr/bin/env python3
"""Streaming ingestion: a live index over a continuous detection feed.

WiFi controllers and cell towers deliver detections continuously.  Instead
of rebuilding the MinSigTree -- or even re-signing per event -- the
streaming subsystem (``repro.streaming``) buffers events and flushes them
through the bulk-signature pipeline in micro-batches, while a sliding
window expires detections that have aged out and periodic compaction keeps
the tree's pruning tight.  This example:

1. builds an *empty* engine whose hash range covers the whole stream,
2. replays a generated WiFi detection log through an ``EventIngestor``
   with a 3-day sliding window, serving top-k queries along the way,
3. shows the ingest/expiry/compaction accounting, and
4. cross-checks the streamed index against a from-scratch build over the
   surviving events -- the streaming equivalence guarantee.

Run with ``PYTHONPATH=src python examples/streaming_updates.py``.
"""

import time

from repro import EventIngestor, TraceDataset, TraceQueryEngine
from repro.mobility import generate_wifi_dataset

HORIZON = 24 * 10          # ten days of hourly detections
WINDOW = 24 * 3            # keep the last three days
KNOBS = dict(num_hashes=128, seed=5, bound_mode="per_level")


def main() -> None:
    # A recorded detection log, flattened to a time-ordered event stream.
    recorded, _config = generate_wifi_dataset(
        num_devices=300, num_hotspots=150, horizon=HORIZON, mean_detections=30, seed=77
    )
    events = [p for device in recorded.entities for p in recorded.trace(device)]
    events.sort(key=lambda p: (p.start, p.end, p.entity, p.unit))
    print(f"recorded log: {len(events)} detections from {recorded.num_entities} devices")

    # The serving engine starts empty; the explicit horizon fixes the hash
    # range up front so signatures stay comparable across the whole stream.
    live = TraceQueryEngine(
        TraceDataset(recorded.hierarchy, horizon=HORIZON), **KNOBS
    ).build()
    ingestor = EventIngestor(live, max_batch_events=256, window=WINDOW, compact_after=200)

    query_device = events[0].entity
    started = time.perf_counter()
    for index, event in enumerate(ingestor_events(events, ingestor), start=1):
        if index % 2500 == 0 and query_device in live.dataset:
            top = live.top_k(query_device, k=3)
            print(f"  [event {index}] top-3 of {query_device}: "
                  f"{[device for device, _ in top]}")
    ingestor.close()
    elapsed = time.perf_counter() - started

    stats, window = ingestor.stats, ingestor.window.stats
    print(f"\nstreamed {stats.events_flushed} events in {elapsed:.2f}s "
          f"({stats.events_flushed / elapsed:.0f} ev/s) over "
          f"{stats.batches_flushed} micro-batches "
          f"(mean {stats.mean_batch_size:.0f} events/flush, "
          f"{stats.entities_reindexed} device re-signings)")
    print(f"window: {window.expired_records} detections expired, "
          f"{window.entities_removed} devices aged out, "
          f"{window.entities_resigned} re-signed, "
          f"{window.compactions} compactions")
    print(f"live index now holds {live.dataset.num_entities} devices "
          f"({live.tree.num_nodes} nodes)")

    # The equivalence guarantee: a from-scratch build over the surviving
    # events answers every query identically.  (cutoff is None when the
    # stream never outlived the window: everything survives.)
    cutoff = ingestor.window.cutoff or 0
    survivors = [e for e in events if e.end > cutoff]
    scratch_dataset = TraceDataset(recorded.hierarchy, horizon=HORIZON)
    for event in survivors:
        scratch_dataset.add_presence(event)
    scratch = TraceQueryEngine(scratch_dataset, **KNOBS).build()
    checked = list(live.dataset.entities)[:25]
    assert all(
        live.top_k(d, k=5).items == scratch.top_k(d, k=5).items for d in checked
    )
    print(f"streamed index == from-scratch build over the surviving events "
          f"({len(checked)} queries checked)")


def ingestor_events(events, ingestor):
    """Feed events into the ingestor, yielding each one for progress hooks."""
    for event in events:
        ingestor.submit(event)
        yield event


if __name__ == "__main__":
    main()
