#!/usr/bin/env python3
"""Location-based marketing: find co-moving cohorts inside a city.

Marketers want groups of people who move together in the physical world
(families, couples, colleagues) to target location-based campaigns.  This
example:

1. simulates a city with the hierarchical individual-mobility model,
2. builds the engine once,
3. runs a top-k query for every member of a seed audience and stitches the
   results into cohorts (connected components of the "strongly associated"
   graph),
4. prints where each cohort spends its time, which is what a campaign planner
   would act on.

Run with ``python examples/marketing_cohorts.py``.
"""

from collections import Counter, defaultdict
from typing import Dict, List, Set

from repro import HierarchicalADM, TraceQueryEngine
from repro.mobility import generate_synthetic_dataset


def build_cohorts(edges: Dict[str, Set[str]]) -> List[Set[str]]:
    """Connected components of the association graph."""
    seen: Set[str] = set()
    cohorts: List[Set[str]] = []
    for start in edges:
        if start in seen:
            continue
        component: Set[str] = set()
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node in component:
                continue
            component.add(node)
            frontier.extend(edges.get(node, ()))
        seen |= component
        if len(component) > 1:
            cohorts.append(component)
    return cohorts


def main() -> None:
    dataset, config = generate_synthetic_dataset(
        num_entities=500,
        horizon=24 * 7,
        grid_side=14,
        max_group_size=6,
        group_copy_probability=0.85,
        observation_rate_range=(0.2, 0.9),
        seed=2024,
    )
    print(f"city simulation: {dataset.describe()}")

    measure = HierarchicalADM(num_levels=dataset.num_levels, u=2, v=2)
    engine = TraceQueryEngine(dataset, measure=measure, num_hashes=256, seed=9).build()

    # Seed audience: the first 60 people (e.g. loyalty-programme members).
    audience = list(dataset.entities[:60])
    association_threshold = 0.25
    edges: Dict[str, Set[str]] = defaultdict(set)
    for person in audience:
        result = engine.top_k(person, k=5)
        for other, degree in result:
            if degree >= association_threshold:
                edges[person].add(other)
                edges[other].add(person)

    cohorts = sorted(build_cohorts(edges), key=len, reverse=True)
    print(f"\nfound {len(cohorts)} co-moving cohorts "
          f"(association degree >= {association_threshold}):")
    for index, cohort in enumerate(cohorts[:8]):
        # Where does the cohort spend its time?  Count shared districts.
        district_counter: Counter = Counter()
        for member in cohort:
            for cell in dataset.cell_sequence(member).at_level(2):
                district_counter[cell.unit] += 1
        top_places = ", ".join(place for place, _count in district_counter.most_common(3))
        print(f"  cohort {index + 1}: {len(cohort)} people "
              f"({', '.join(sorted(cohort)[:4])}{'…' if len(cohort) > 4 else ''}) "
              f"-- most time in {top_places}")


if __name__ == "__main__":
    main()
