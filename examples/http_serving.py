#!/usr/bin/env python3
"""HTTP serving: the `repro serve` daemon driven as a library.

The workflow behind ``repro serve``, run end-to-end in one process:

1. build an engine over a synthetic city and wrap it in a
   :class:`repro.server.TraceServer` (ingestor + coalescer + metrics),
2. bind the HTTP daemon on an ephemeral port and talk to it over real
   sockets: a single query, a coalesced burst of concurrent queries,
   a streamed event append, and a stats read,
3. shut down gracefully and confirm the buffered write survived.

Run with ``PYTHONPATH=src python examples/http_serving.py``.
See ``docs/SERVING.md`` for the full endpoint reference.
"""

import json
import threading
import urllib.request

from repro import TraceQueryEngine
from repro.mobility.hierarchical import generate_synthetic_dataset
from repro.server import TraceServer, build_http_server


def request(base: str, path: str, payload=None):
    """POST ``payload`` (or GET when ``None``) and decode the JSON reply."""
    data = None if payload is None else json.dumps(payload).encode()
    http_request = urllib.request.Request(
        base + path, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(http_request) as response:
        return json.loads(response.read())


def main() -> None:
    dataset, _config = generate_synthetic_dataset(num_entities=120, horizon=96, seed=11)
    print(dataset.describe())
    entities = list(dataset.entities)
    base_unit = dataset.trace(entities[0])[0].unit

    # -- 1. Engine + serving core. ---------------------------------------
    engine = TraceQueryEngine(
        dataset, num_hashes=128, seed=7, query_cache_size=256
    ).build()
    server = TraceServer(engine, coalesce_window=0.005)

    # -- 2. The daemon, on an ephemeral port. ----------------------------
    httpd = build_http_server(server, port=0)
    port = httpd.server_address[1]
    base = f"http://127.0.0.1:{port}"
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    print(f"\nserving on {base}")
    print("healthz:", request(base, "/v1/healthz"))

    # One query.
    answer = request(base, "/v1/topk", {"entity": entities[0], "k": 3})
    print(f"\ntop-3 of {entities[0]}:",
          [row["entity"] for row in answer["results"]])

    # A concurrent burst: these coalesce into shared top_k_batch calls.
    threads = [
        threading.Thread(
            target=request, args=(base, "/v1/topk", {"entity": entity, "k": 3})
        )
        for entity in entities[:24]
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # A streamed write, flushed immediately so the next query sees it.
    appended = request(base, "/v1/events", {
        "events": [
            {"entity": "visitor-1", "unit": base_unit, "start": 10, "end": 14},
        ],
        "flush": True,
    })
    print("\nevent append:", appended)
    answer = request(base, "/v1/topk", {"entity": "visitor-1", "k": 3})
    print("top-3 of visitor-1:", [row["entity"] for row in answer["results"]])

    # Operational counters: coalescing rate, cache hit rate, latencies.
    stats = request(base, "/v1/stats")
    coalescer = stats["coalescer"]
    print(f"\ncoalescer: {coalescer['submitted']} queries in "
          f"{coalescer['batches']} batches "
          f"(mean batch {coalescer['mean_batch']:.1f}, "
          f"{coalescer['coalesced']} coalesced)")
    print("cache:", stats["engine"]["cache"])
    topk_latency = stats["endpoints"]["/v1/topk"]["latency"]
    print(f"topk latency: mean {topk_latency['mean_seconds'] * 1000.0:.2f} ms "
          f"over {topk_latency['count']} requests")

    # -- 3. Graceful shutdown (drains queries, flushes the ingestor). ----
    httpd.shutdown()
    httpd.server_close()
    server.close()
    assert "visitor-1" in engine.dataset
    print("\nshut down cleanly; streamed write persisted in the engine")


if __name__ == "__main__":
    main()
