#!/usr/bin/env python3
"""Quickstart: build a tiny sp-index by hand, index a handful of traces, query.

This walks through the whole public API on a dataset small enough to reason
about by eye:

1. describe the spatial hierarchy (city -> district -> venue),
2. record presence instances for a few people,
3. build the MinSigTree-backed engine (signatures go through the
   vectorised bulk pipeline -- identical index, several times faster),
4. ask for the top-k associates of one person and inspect the statistics,
5. answer a whole batch of queries at once and read the aggregate report.

Run with ``python examples/quickstart.py``.
"""

from repro import (
    HierarchicalADM,
    PresenceInstance,
    SpatialHierarchy,
    TraceDataset,
    TraceQueryEngine,
)


def build_hierarchy() -> SpatialHierarchy:
    """A 3-level sp-index: one city, two districts, six venues."""
    hierarchy = SpatialHierarchy()
    hierarchy.add_unit("metropolis")
    hierarchy.add_unit("downtown", "metropolis")
    hierarchy.add_unit("harbour", "metropolis")
    for venue in ("cafe", "library", "gym"):
        hierarchy.add_unit(venue, "downtown")
    for venue in ("pier", "market", "aquarium"):
        hierarchy.add_unit(venue, "harbour")
    hierarchy.validate()
    return hierarchy


def build_dataset(hierarchy: SpatialHierarchy) -> TraceDataset:
    """One week of hourly traces for five people.

    Alice and Bob commute together (same venues, same hours); Carol overlaps
    with Alice only at the gym; Dave and Erin live around the harbour.
    """
    dataset = TraceDataset(hierarchy, horizon=24 * 7)
    day = 24
    for day_index in range(5):
        offset = day_index * day
        # Alice and Bob: cafe at 9, library 10-12, gym at 18.
        for person in ("alice", "bob"):
            dataset.add_presence(PresenceInstance(person, "cafe", offset + 9, offset + 10))
            dataset.add_presence(PresenceInstance(person, "library", offset + 10, offset + 13))
            dataset.add_presence(PresenceInstance(person, "gym", offset + 18, offset + 19))
        # Carol: gym at 18 too, library on her own schedule.
        dataset.add_presence(PresenceInstance("carol", "gym", offset + 18, offset + 19))
        dataset.add_presence(PresenceInstance("carol", "library", offset + 14, offset + 16))
        # Dave and Erin: harbour people; they meet at the market at noon.
        dataset.add_presence(PresenceInstance("dave", "pier", offset + 8, offset + 11))
        dataset.add_presence(PresenceInstance("dave", "market", offset + 12, offset + 13))
        dataset.add_presence(PresenceInstance("erin", "market", offset + 12, offset + 13))
        dataset.add_presence(PresenceInstance("erin", "aquarium", offset + 15, offset + 17))
    return dataset


def main() -> None:
    hierarchy = build_hierarchy()
    dataset = build_dataset(hierarchy)
    print(hierarchy.describe())
    print(dataset.describe())

    measure = HierarchicalADM(num_levels=hierarchy.num_levels, u=2, v=2)
    engine = TraceQueryEngine(dataset, measure=measure, num_hashes=64, seed=7)
    engine.build()
    print(f"index built in {engine.last_build_seconds * 1000:.1f} ms, "
          f"{engine.tree.num_nodes} nodes, {engine.index_size_bytes()} bytes")

    for person in ("alice", "dave"):
        result = engine.top_k(person, k=3)
        print(f"\ntop-3 associates of {person}:")
        for entity, degree in result:
            print(f"  {entity:<8} association degree {degree:.3f}")
        stats = result.stats
        print(
            f"  scored {stats.entities_scored} of {stats.population} entities "
            f"(pruning effectiveness {stats.pruning_effectiveness:.2f}, "
            f"early termination: {stats.terminated_early})"
        )

    # Batch mode: one call answers a query per person, shares the hashing
    # of overlapping query cells, and reports batch-level statistics.  The
    # results are identical to calling engine.top_k per person.
    everyone = list(dataset.entities)
    batch = engine.top_k_batch(everyone, k=3, workers=2)
    print(
        f"\nbatch of {batch.num_queries} queries: "
        f"{batch.queries_per_second:.0f} q/s with {batch.workers} workers, "
        f"{batch.total_entities_scored} entities scored, "
        f"mean pruning effectiveness {batch.mean_pruning_effectiveness:.2f}"
    )
    for result in batch:
        best = result.entities[0] if result.entities else "-"
        print(f"  {result.query_entity:<8} closest associate: {best}")


if __name__ == "__main__":
    main()
