#!/usr/bin/env python3
"""Snapshot-based serving: build once, cold-start instantly, shard the load.

The serving workflow behind ``repro index build`` / ``repro query --snapshot``:

1. build an engine over a synthetic city and **save** it as a snapshot,
2. **load** the snapshot the way a fresh serving process would -- no
   re-signing -- and verify the answers are identical,
3. stand up a **sharded** deployment with an LRU query cache, route some
   live updates to the owning shards, and read the cache statistics.

Run with ``PYTHONPATH=src python examples/snapshot_serving.py``.
"""

import tempfile
import time
from pathlib import Path

from repro import ShardedEngine, TraceQueryEngine
from repro.mobility.hierarchical import generate_synthetic_dataset
from repro.traces.events import PresenceInstance


def main() -> None:
    dataset, _config = generate_synthetic_dataset(num_entities=150, horizon=96, seed=11)
    print(dataset.describe())
    query = dataset.entities[0]

    # -- 1. Build once, snapshot to disk. --------------------------------
    engine = TraceQueryEngine(dataset, num_hashes=128, seed=7).build()
    workdir = Path(tempfile.mkdtemp(prefix="repro-snapshot-"))
    snapshot = engine.save(workdir / "index")
    print(f"\nbuilt in {engine.last_build_seconds * 1000:.0f} ms, "
          f"snapshot at {snapshot}")

    # -- 2. Cold-start a "serving process" from the snapshot. ------------
    started = time.perf_counter()
    served = TraceQueryEngine.load(snapshot)
    load_ms = (time.perf_counter() - started) * 1000
    original = engine.top_k(query, k=5)
    restored = served.top_k(query, k=5)
    assert restored.items == original.items, "snapshot must restore results exactly"
    print(f"cold-started from snapshot in {load_ms:.0f} ms; "
          f"top-5 for {query} identical: {restored.entities}")

    # -- 3. Sharded serving with a query cache. --------------------------
    sharded = ShardedEngine(
        served.dataset,
        num_shards=4,
        partitioner="hash",
        num_hashes=128,
        seed=7,
        query_cache_size=256,
    ).build()
    result = sharded.top_k(query, k=5)
    assert result.items == original.items, "sharded fan-out must merge to the same top-k"
    print(f"\n4-shard deployment built in {sharded.last_build_seconds * 1000:.0f} ms; "
          f"merged top-5 identical")

    # Repeat traffic hits the cache; updates invalidate it.
    sharded.top_k(query, k=5)
    stats = sharded.query_cache.stats
    print(f"cache after repeat query: hits={stats.hits}, misses={stats.misses}")
    base_unit = dataset.hierarchy.base_units[0]
    sharded.add_records([PresenceInstance("newcomer", base_unit, 3, 6)])
    owner = sharded.shard_of("newcomer")
    print(f"routed newcomer to shard {owner}; cache invalidated "
          f"(entries={len(sharded.query_cache)})")

    # Sharded deployments snapshot too: one directory per shard + manifest.
    sharded_snapshot = sharded.save(workdir / "sharded-index")
    reloaded = ShardedEngine.load(sharded_snapshot)
    assert reloaded.top_k(query, k=5).items == sharded.top_k(query, k=5).items
    print(f"sharded snapshot at {sharded_snapshot} restores identically")


if __name__ == "__main__":
    main()
