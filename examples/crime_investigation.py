#!/usr/bin/env python3
"""Post-crime investigation over WiFi handshake traces (the paper's motivating scenario).

A person of interest is known; investigators want the devices whose digital
traces overlap theirs the most -- before, during and after the incident.  The
script:

1. generates a WiFi-handshake workload (the REAL-dataset substitute) with
   household/colleague groups baked in,
2. builds the MinSigTree engine,
3. runs a top-k query for a person of interest and prints the suspects,
4. compares the answer and the work done against an exhaustive scan,
5. narrows the investigation to a time window around the "incident" by
   re-querying on a filtered dataset.

Run with ``python examples/crime_investigation.py``.
"""

import time

from repro import HierarchicalADM, TraceDataset, TraceQueryEngine
from repro.baselines import BruteForceTopK
from repro.mobility import generate_wifi_dataset


def restrict_to_window(dataset: TraceDataset, start: int, end: int) -> TraceDataset:
    """A new dataset containing only presences intersecting ``[start, end)``."""
    window = TraceDataset(dataset.hierarchy, horizon=dataset.horizon)
    for entity in dataset.entities:
        kept = [p for p in dataset.trace(entity) if p.start < end and p.end > start]
        if kept:
            window.extend(kept)
    return window


def main() -> None:
    dataset, config = generate_wifi_dataset(
        num_devices=400,
        num_hotspots=180,
        horizon=24 * 14,
        mean_detections=35,
        companion_fraction=0.2,
        seed=42,
    )
    print(f"WiFi log: {dataset.describe()}")

    measure = HierarchicalADM(num_levels=dataset.num_levels, u=2, v=2)
    engine = TraceQueryEngine(dataset, measure=measure, num_hashes=256, seed=3).build()
    print(f"index: {engine.tree.num_nodes} nodes, built in {engine.last_build_seconds:.2f}s")

    person_of_interest = "device-companion-0"
    k = 5

    started = time.perf_counter()
    result = engine.top_k(person_of_interest, k=k)
    indexed_time = time.perf_counter() - started

    started = time.perf_counter()
    exhaustive = BruteForceTopK(dataset, measure).search(person_of_interest, k=k)
    scan_time = time.perf_counter() - started

    print(f"\nperson of interest: {person_of_interest}")
    print(f"top-{k} associated devices (MinSigTree, {indexed_time * 1000:.1f} ms, "
          f"{result.stats.entities_scored} devices scored):")
    for entity, degree in result:
        print(f"  {entity:<22} degree {degree:.3f}")
    print(f"exhaustive scan agrees: {set(result.entities) == set(exhaustive.entities)} "
          f"({scan_time * 1000:.1f} ms, {exhaustive.stats.entities_scored} devices scored)")

    # Narrow to the 48 hours around a suspected incident at hour 200.
    window = restrict_to_window(dataset, 176, 224)
    if person_of_interest in window:
        window_engine = TraceQueryEngine(window, measure=measure, num_hashes=256, seed=3).build()
        window_result = window_engine.top_k(person_of_interest, k=k)
        print(f"\nsame query restricted to hours [176, 224) "
              f"({window.num_entities} devices seen in the window):")
        for entity, degree in window_result:
            print(f"  {entity:<22} degree {degree:.3f}")
    else:
        print("\nperson of interest has no detections in the incident window")


if __name__ == "__main__":
    main()
